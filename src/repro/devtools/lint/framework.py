"""Rule framework for the repro contract linter.

The linter is a two-phase ``ast`` pass:

1. **Collect** — every target file is parsed once into a
   :class:`ModuleInfo` (AST, source lines, suppression pragmas) and folded
   into a :class:`ProjectModel`: a cross-file table of classes (bases,
   methods, class-level flags, mutable ``__init__`` state, attribute
   annotations) and registry registrations.  Cross-file facts are what let
   rules reason about inheritance (``checkpoint_state`` may live on an
   intermediate base) without importing the code under analysis.
2. **Check** — each registered rule receives the whole model and yields
   :class:`Finding` objects.  Rules never execute target code.

Suppression happens in two layers, both recorded rather than silently
dropped:

* ``# repro-lint: disable=CODE[,CODE]`` on (or immediately above) the
  flagged line, and ``# repro-lint: disable-file=CODE`` anywhere in the
  file, silence a finding at the source.  ``disable=all`` is accepted.
* A committed baseline file (:class:`Baseline`) grandfathers known
  findings by ``(code, path, symbol)`` with a mandatory justification.
  Baselined findings do not fail the build; baseline entries that no
  longer match anything are reported as *stale* so debt can only shrink.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleInfo",
    "ClassInfo",
    "Registration",
    "ProjectModel",
    "Baseline",
    "BaselineEntry",
    "LintResult",
    "Rule",
    "RULES",
    "rule",
    "collect_modules",
    "build_model",
    "run_lint",
]

PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Emitted when a target file cannot be parsed at all.
PARSE_ERROR_CODE = "RPR000"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location."""

    #: Stable rule code (``RPR001`` ... ``RPR007``).
    code: str
    #: Path as given on the command line, POSIX separators.
    path: str
    line: int
    col: int
    #: ``Class``, ``Class.method``, ``function`` or ``<module>`` — together
    #: with ``code`` and ``path`` this is the baseline identity, chosen so a
    #: baseline survives unrelated edits that shift line numbers.
    symbol: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} [{self.symbol}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass(frozen=True)
class LintConfig:
    """Tunable surface of the rule set.

    Paths are package-relative POSIX strings (``repro/core/packet.py``);
    tests point these at fixture trees instead of the real package.
    """

    #: Module prefixes that form the deterministic engine (RPR001 scope).
    #: The clock-free service modules join too: lifecycle records, the
    #: journal codec and the scheduler must stay deterministic functions of
    #: their inputs (wall-clock leases live in server.py, outside the scope).
    engine_prefixes: Tuple[str, ...] = (
        "repro/core/",
        "repro/network/",
        "repro/adversary/",
        "repro/service/jobs.py",
        "repro/service/journal.py",
        "repro/service/scheduler.py",
    )
    #: Modules whose classes are allocated on the simulation hot path and
    #: must declare ``__slots__`` (RPR002 scope).
    hot_path_modules: Tuple[str, ...] = (
        "repro/core/packet.py",
        "repro/core/pseudobuffer.py",
        "repro/core/indexset.py",
        "repro/core/excess.py",
        "repro/core/hierarchy.py",
        "repro/network/batch.py",
        "repro/network/batch_sharded.py",
        "repro/network/events.py",
        "repro/network/shm.py",
        "repro/service/jobs.py",
        "repro/service/journal.py",
    )
    #: Methods whose iteration order feeds activation selection, boundary
    #: hand-off or checkpoint payloads — raw set/dict iteration here breaks
    #: the bit-identical determinism contract (RPR001).
    order_critical_functions: Tuple[str, ...] = (
        "select_activations",
        "select_segment_activations",
        "boundary_view",
        "fold_sibling_state",
        "checkpoint_state",
        "classify",
        "on_inject",
        "on_arrival",
        "on_round_end",
        "on_buffer_change",
        "injections_for_round",
        "directives_for",
        "drop_next_send",
        "select_next",
        "replay",
        # Boundary-ring transport: block layout and publish order feed the
        # hand-off protocol directly (repro/network/shm.py).
        "send_block",
        "recv_block",
    )
    #: Modules allowed to call ``print`` (user-facing surfaces).
    print_allowed_modules: Tuple[str, ...] = (
        "repro/cli.py",
        "repro/__main__.py",
    )
    print_allowed_prefixes: Tuple[str, ...] = ("repro/devtools/",)
    #: Modules allowed to use ``object.__setattr__`` (frozen-dataclass
    #: ``__post_init__`` normalization: specs and fault plans).
    frozen_setattr_modules: Tuple[str, ...] = (
        "repro/api/specs.py",
        "repro/network/faults.py",
    )
    #: Root class of the forwarding-algorithm hierarchy.  Hook defaults on
    #: the root itself do not satisfy RPR003/RPR004 — each algorithm owns
    #: its segment-exactness and checkpoint proof obligations.
    algorithm_root: str = "ForwardingAlgorithm"
    #: Root class adversary row tables must derive from (RPR003b).
    rows_root: str = "ResumableRows"
    rows_module_prefixes: Tuple[str, ...] = ("repro/adversary/",)
    rows_class_suffix: str = "Rows"
    #: Registration decorators tracked by RPR005, decorator name -> kind.
    registry_decorators: Tuple[Tuple[str, str], ...] = (
        ("register_algorithm", "algorithm"),
        ("register_adversary", "adversary"),
        ("register_topology", "topology"),
    )


@dataclass(slots=True)
class Pragmas:
    """Suppression pragmas of one file."""

    file_codes: Set[str] = field(default_factory=set)
    line_codes: Dict[int, Set[str]] = field(default_factory=dict)

    def suppresses(self, code: str, line: int) -> bool:
        if "all" in self.file_codes or code in self.file_codes:
            return True
        codes = self.line_codes.get(line)
        return codes is not None and ("all" in codes or code in codes)


def _parse_pragmas(lines: Sequence[str]) -> Pragmas:
    pragmas = Pragmas()
    for index, text in enumerate(lines, start=1):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = {code.strip() for code in match.group("codes").split(",")}
        codes = {c.lower() if c.lower() == "all" else c.upper() for c in codes}
        if match.group("scope") == "disable-file":
            pragmas.file_codes |= codes
        else:
            pragmas.line_codes.setdefault(index, set()).update(codes)
            if text.lstrip().startswith("#"):
                # A comment-only pragma line governs the statement below it.
                pragmas.line_codes.setdefault(index + 1, set()).update(codes)
    return pragmas


@dataclass(slots=True)
class ModuleInfo:
    """One parsed target file."""

    #: Path as passed on the command line (for reporting).
    display_path: str
    #: Package-relative POSIX path (``repro/core/packet.py``) used by all
    #: path-scoped rule predicates, so results do not depend on the CWD.
    rel_path: str
    tree: ast.Module
    source_lines: List[str]
    pragmas: Pragmas


@dataclass(slots=True)
class ClassInfo:
    """Cross-file facts about one class definition."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    lineno: int
    #: Base-class *names* (rightmost attribute segment for dotted bases).
    bases: Tuple[str, ...]
    #: Methods and nested functions defined directly in the class body.
    methods: Tuple[str, ...]
    decorators: Tuple[str, ...]
    #: True when the body assigns ``__slots__`` or a dataclass decorator
    #: passes ``slots=True``.
    declares_slots: bool
    #: ``{flag: value}`` for boolean class attributes like
    #: ``supports_sharding = True``.
    bool_flags: Dict[str, bool]
    #: ``self.<attr>`` assignments in ``__init__`` whose value is a mutable
    #: container literal/constructor, as ``(attr, lineno)`` pairs.
    mutable_init_attrs: Tuple[Tuple[str, int], ...]
    #: Annotations for instance attributes (``self.x: T`` in any method)
    #: and class-level ``x: T`` declarations.
    attr_annotations: Dict[str, ast.expr]


@dataclass(frozen=True, slots=True)
class Registration:
    """One ``@register_*`` decoration site."""

    kind: str
    name: str
    aliases: Tuple[str, ...]
    module: str
    display_path: str
    lineno: int
    symbol: str


_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "OrderedDict",
        "Counter",
    }
)

_ENUM_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"})


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] style bases
        return _base_name(node.value)
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _base_name(node.func)
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _collect_class(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    bases = tuple(name for name in (_base_name(b) for b in node.bases) if name)
    methods: List[str] = []
    decorators: List[str] = []
    declares_slots = False
    bool_flags: Dict[str, bool] = {}
    mutable_init: List[Tuple[str, int]] = []
    annotations: Dict[str, ast.expr] = {}

    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            name = _base_name(deco.func)
            if name:
                decorators.append(name)
            if name == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        declares_slots = True
        else:
            name = _base_name(deco)
            if name:
                decorators.append(name)

    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.append(item.name)
            for sub in ast.walk(item):
                if (
                    isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Attribute)
                    and isinstance(sub.target.value, ast.Name)
                    and sub.target.value.id == "self"
                ):
                    annotations.setdefault(sub.target.attr, sub.annotation)
            if item.name == "__init__":
                for sub in ast.walk(item):
                    value: Optional[ast.expr]
                    targets: List[ast.expr]
                    if isinstance(sub, ast.Assign):
                        value, targets = sub.value, sub.targets
                    elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                        value, targets = sub.value, [sub.target]
                    else:
                        continue
                    if not _is_mutable_value(value):
                        continue
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            mutable_init.append((target.attr, sub.lineno))
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__slots__":
                        declares_slots = True
                    elif isinstance(item.value, ast.Constant) and isinstance(
                        item.value.value, bool
                    ):
                        bool_flags[target.id] = item.value.value
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if item.target.id == "__slots__":
                declares_slots = True
            else:
                annotations.setdefault(item.target.id, item.annotation)
            if (
                item.value is not None
                and isinstance(item.value, ast.Constant)
                and isinstance(item.value.value, bool)
            ):
                bool_flags[item.target.id] = item.value.value

    return ClassInfo(
        name=node.name,
        module=module,
        node=node,
        lineno=node.lineno,
        bases=bases,
        methods=tuple(methods),
        decorators=tuple(decorators),
        declares_slots=declares_slots,
        bool_flags=bool_flags,
        mutable_init_attrs=tuple(mutable_init),
        attr_annotations=annotations,
    )


def _collect_registrations(module: ModuleInfo, config: LintConfig) -> List[Registration]:
    kinds = dict(config.registry_decorators)
    found: List[Registration] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            deco_name = _base_name(deco.func)
            if deco_name not in kinds:
                continue
            if not (deco.args and isinstance(deco.args[0], ast.Constant)):
                continue
            name = deco.args[0].value
            if not isinstance(name, str):
                continue
            aliases: List[str] = []
            for kw in deco.keywords:
                if kw.arg == "aliases" and isinstance(kw.value, (ast.Tuple, ast.List)):
                    for element in kw.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            aliases.append(element.value)
            found.append(
                Registration(
                    kind=kinds[deco_name],
                    name=name,
                    aliases=tuple(aliases),
                    module=module.rel_path,
                    display_path=module.display_path,
                    lineno=deco.lineno,
                    symbol=node.name,
                )
            )
    return found


@dataclass(slots=True)
class ProjectModel:
    """Everything the rules know about the analysed tree."""

    modules: List[ModuleInfo]
    classes: Dict[str, ClassInfo]
    registrations: List[Registration]
    parse_failures: List[Finding]
    #: ``{label: text}`` documentation surfaces searched by RPR005.
    doc_surfaces: Dict[str, str]

    def ancestors(self, class_name: str) -> Iterator[ClassInfo]:
        """Transitive in-project ancestors, nearest first, cycle-safe."""
        seen: Set[str] = {class_name}
        queue = list(self.classes[class_name].bases) if class_name in self.classes else []
        while queue:
            base = queue.pop(0)
            if base in seen:
                continue
            seen.add(base)
            info = self.classes.get(base)
            if info is None:
                continue
            yield info
            queue.extend(info.bases)

    def derives_from(self, class_name: str, root: str) -> bool:
        return any(a.name == root for a in self.ancestors(class_name))

    def defines_below_root(self, class_name: str, method: str, root: str) -> bool:
        """True when *class_name* (or an ancestor other than *root*) defines
        *method* in its own body — inherited root defaults do not count."""
        info = self.classes.get(class_name)
        if info is not None and method in info.methods:
            return True
        for ancestor in self.ancestors(class_name):
            if ancestor.name == root:
                continue
            if method in ancestor.methods:
                return True
        return False


Rule = Callable[[ProjectModel, LintConfig], Iterable[Finding]]


@dataclass(frozen=True, slots=True)
class RuleSpec:
    code: str
    name: str
    summary: str
    check: Rule


#: Registry of all known rules, keyed by stable code.
RULES: Dict[str, RuleSpec] = {}


def rule(code: str, name: str, summary: str) -> Callable[[Rule], Rule]:
    """Register a rule function under a stable code."""

    def decorator(check: Rule) -> Rule:
        if code in RULES:
            raise ValueError(f"duplicate lint rule code {code}")
        RULES[code] = RuleSpec(code=code, name=name, summary=summary, check=check)
        return check

    return decorator


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    code: str
    path: str
    symbol: str
    justification: str

    def key(self) -> Tuple[str, str, str]:
        return (self.code, self.path, self.symbol)


class Baseline:
    """Committed set of grandfathered findings (``lint_baseline.json``)."""

    VERSION = 1

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
            entry.key(): entry for entry in self.entries
        }
        self._used: Set[Tuple[str, str, str]] = set()

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} in {path}"
            )
        entries = []
        for raw in payload.get("entries", []):
            entries.append(
                BaselineEntry(
                    code=raw["code"],
                    path=raw["path"],
                    symbol=raw["symbol"],
                    justification=raw.get("justification", ""),
                )
            )
        return cls(entries)

    def matches(self, finding: Finding) -> bool:
        key = (finding.code, finding.path, finding.symbol)
        if key in self._by_key:
            self._used.add(key)
            return True
        return False

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries that matched nothing in the last run — debt already paid."""
        return [entry for entry in self.entries if entry.key() not in self._used]

    @staticmethod
    def write(path: Path, findings: Sequence[Finding], justification: str) -> None:
        entries = [
            {
                "code": f.code,
                "path": f.path,
                "symbol": f.symbol,
                "justification": justification,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ]
        payload = {"version": Baseline.VERSION, "entries": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# --------------------------------------------------------------------------
# Collection and running
# --------------------------------------------------------------------------


def _package_parent(target: Path) -> Path:
    """Directory relative to which package paths are computed.

    ``src/repro`` → ``src`` (so files report as ``repro/...``); a directory
    that is not itself a package is its own anchor; a single file anchors at
    the nearest non-package ancestor so ``repro/core/x.py`` still resolves.
    """
    if target.is_file():
        parent = target.parent
        while (parent / "__init__.py").exists() and parent.parent != parent:
            parent = parent.parent
        return parent
    if (target / "__init__.py").exists():
        return target.parent
    return target


def collect_modules(targets: Sequence[Path]) -> Tuple[List[ModuleInfo], List[Finding]]:
    """Parse every ``.py`` file under *targets* into :class:`ModuleInfo`."""
    modules: List[ModuleInfo] = []
    failures: List[Finding] = []
    seen: Set[Path] = set()
    for target in targets:
        anchor = _package_parent(target)
        if target.is_file():
            files: Iterable[Path] = [target]
        else:
            files = sorted(target.rglob("*.py"))
        for file in files:
            resolved = file.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            display = file.as_posix()
            rel = file.resolve().relative_to(anchor.resolve()).as_posix()
            source = file.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=display)
            except SyntaxError as error:
                failures.append(
                    Finding(
                        code=PARSE_ERROR_CODE,
                        path=display,
                        line=error.lineno or 1,
                        col=error.offset or 0,
                        symbol="<module>",
                        message=f"file does not parse: {error.msg}",
                    )
                )
                continue
            lines = source.splitlines()
            modules.append(
                ModuleInfo(
                    display_path=display,
                    rel_path=rel,
                    tree=tree,
                    source_lines=lines,
                    pragmas=_parse_pragmas(lines),
                )
            )
    return modules, failures


def build_model(
    targets: Sequence[Path],
    config: LintConfig,
    doc_surfaces: Optional[Mapping[str, str]] = None,
) -> ProjectModel:
    modules, failures = collect_modules(targets)
    classes: Dict[str, ClassInfo] = {}
    registrations: List[Registration] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                info = _collect_class(node, module)
                # First definition wins: later same-named classes (test
                # doubles, fixtures) must not shadow engine classes.
                classes.setdefault(info.name, info)
        registrations.extend(_collect_registrations(module, config))
    return ProjectModel(
        modules=modules,
        classes=classes,
        registrations=registrations,
        parse_failures=failures,
        doc_surfaces=dict(doc_surfaces or {}),
    )


@dataclass(slots=True)
class LintResult:
    """Outcome of one lint run, already split by suppression layer."""

    #: Findings that fail the build (not pragma-suppressed, not baselined).
    active: List[Finding]
    #: Findings matched by the committed baseline.
    baselined: List[Finding]
    #: Baseline entries that matched nothing — remove them.
    stale_baseline: List[BaselineEntry]
    #: Active + baselined counts per rule code.
    per_rule_active: Dict[str, int]
    per_rule_baselined: Dict[str, int]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def run_lint(
    targets: Sequence[Path],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
    doc_surfaces: Optional[Mapping[str, str]] = None,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run every (or the selected) rule over *targets*."""
    config = config or LintConfig()
    baseline = baseline or Baseline()
    model = build_model(targets, config, doc_surfaces)

    selected = set(select) if select else set(RULES)
    raw: List[Finding] = list(model.parse_failures)
    for code in sorted(selected):
        spec = RULES.get(code)
        if spec is None:
            raise ValueError(f"unknown lint rule {code!r}")
        raw.extend(spec.check(model, config))

    pragmas_by_path = {m.display_path: m.pragmas for m in model.modules}
    active: List[Finding] = []
    baselined: List[Finding] = []
    for finding in sorted(raw, key=Finding.sort_key):
        pragmas = pragmas_by_path.get(finding.path)
        if pragmas is not None and pragmas.suppresses(finding.code, finding.line):
            continue
        if baseline.matches(finding):
            baselined.append(finding)
        else:
            active.append(finding)

    def _counts(findings: Sequence[Finding]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return counts

    return LintResult(
        active=active,
        baselined=baselined,
        stale_baseline=baseline.stale_entries(),
        per_rule_active=_counts(active),
        per_rule_baselined=_counts(baselined),
    )
