"""The repro contract rules (RPR001–RPR007).

Each rule encodes one of the engine's unwritten correctness contracts; see
``docs/LINTING.md`` for the catalogue with rationale.  Rules are pure
functions over the :class:`~repro.devtools.lint.framework.ProjectModel` —
they never import or execute the code under analysis.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .framework import (
    ClassInfo,
    Finding,
    LintConfig,
    ModuleInfo,
    ProjectModel,
    rule,
)

__all__ = ["register_builtin_rules"]


def _in_engine(module: ModuleInfo, config: LintConfig) -> bool:
    return module.rel_path.startswith(tuple(config.engine_prefixes))


def _symbol(*parts: Optional[str]) -> str:
    return ".".join(p for p in parts if p) or "<module>"


def _walk_functions(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[ast.ClassDef], ast.FunctionDef]]:
    """Yield ``(enclosing_class_or_None, function)`` pairs, outermost first."""

    def visit(node: ast.AST, owner: Optional[ast.ClassDef]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield owner, child
                yield from visit(child, owner)
            else:
                yield from visit(child, owner)

    yield from visit(tree, None)


# --------------------------------------------------------------------------
# RPR001 — determinism
# --------------------------------------------------------------------------

_NONDET_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "clock_gettime",
    }
)

_SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
)
_DICT_TYPE_NAMES = frozenset({"dict", "Dict", "Mapping", "MutableMapping", "DefaultDict"})
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
#: Wrapping one of these around a set expression makes the result
#: order-insensitive, so iteration inside them is exempt.
_ORDER_INSENSITIVE_WRAPPERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset", "Counter"}
)


def _ann_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_TYPE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_TYPE_NAMES
    if isinstance(node, ast.Subscript):
        return _ann_is_set(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[", 1)[0].strip() in _SET_TYPE_NAMES
    return False


def _ann_is_dict_of_set(node: Optional[ast.expr]) -> bool:
    """True for ``Dict[K, set]``-shaped annotations."""
    if not isinstance(node, ast.Subscript):
        return False
    head = node.value
    head_name = head.id if isinstance(head, ast.Name) else getattr(head, "attr", None)
    if head_name not in _DICT_TYPE_NAMES:
        return False
    args = node.slice
    if isinstance(args, ast.Tuple) and len(args.elts) == 2:
        return _ann_is_set(args.elts[1])
    return False


class _SetTyping:
    """Best-effort, purely syntactic set-typedness inference for one function."""

    def __init__(self, cls: Optional[ClassInfo], func: ast.FunctionDef) -> None:
        self.cls = cls
        self.local_sets: Set[str] = set()
        self.local_values: Dict[str, ast.expr] = {}
        for arg in list(func.args.args) + list(func.args.kwonlyargs):
            if _ann_is_set(arg.annotation):
                self.local_sets.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_values[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _ann_is_set(node.annotation):
                    self.local_sets.add(node.target.id)
                elif node.value is not None:
                    self.local_values[node.target.id] = node.value

    def is_set(self, node: ast.expr, depth: int = 0) -> bool:
        if depth > 6:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_RETURNING_METHODS:
                    return self.is_set(func.value, depth + 1)
                if func.attr in {"get", "pop", "setdefault"}:
                    return self._is_dict_of_set(func.value)
            return False
        if isinstance(node, ast.Name):
            if node.id in self.local_sets:
                return True
            value = self.local_values.get(node.id)
            return value is not None and self.is_set(value, depth + 1)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self" and self.cls:
                return _ann_is_set(self.cls.attr_annotations.get(node.attr))
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left, depth + 1) or self.is_set(node.right, depth + 1)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body, depth + 1) or self.is_set(node.orelse, depth + 1)
        return False

    def _is_dict_of_set(self, node: ast.expr) -> bool:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.cls is not None
        ):
            return _ann_is_dict_of_set(self.cls.attr_annotations.get(node.attr))
        if isinstance(node, ast.Name):
            value = self.local_values.get(node.id)
            return value is not None and self._is_dict_of_set(value)
        return False


def _iteration_sites(func: ast.FunctionDef) -> Iterator[Tuple[ast.expr, ast.AST]]:
    """Yield ``(iterable_expr, site_node)`` for every ordered iteration."""
    for node in ast.walk(func):
        if isinstance(node, ast.For):
            yield node.iter, node
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for comp in node.generators:
                yield comp.iter, node
        elif isinstance(node, ast.Call):
            name = node.func.id if isinstance(node.func, ast.Name) else None
            if name in {"list", "tuple"} and node.args:
                yield node.args[0], node


def _order_insensitive_parents(func: ast.FunctionDef) -> Set[int]:
    """ids of nodes directly wrapped by an order-insensitive consumer."""
    wrapped: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = node.func.id if isinstance(node.func, ast.Name) else None
            if name in _ORDER_INSENSITIVE_WRAPPERS:
                for arg in node.args:
                    wrapped.add(id(arg))
                    # sorted(x for x in s) — exempt the comprehension too.
                    if isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                    ):
                        for comp in arg.generators:
                            wrapped.add(id(comp.iter))
    return wrapped


@rule(
    "RPR001",
    "determinism",
    "no unseeded randomness/clock reads in engine modules; no raw set "
    "iteration in order-critical methods",
)
def check_determinism(model: ProjectModel, config: LintConfig) -> Iterable[Finding]:
    findings: List[Finding] = []
    order_critical = set(config.order_critical_functions)
    for module in model.modules:
        if not _in_engine(module, config):
            continue

        # Part 1: nondeterministic sources anywhere in the module.
        from_random: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        from_random.add(alias.asname or alias.name)
                        findings.append(
                            Finding(
                                code="RPR001",
                                path=module.display_path,
                                line=node.lineno,
                                col=node.col_offset,
                                symbol="<module>",
                                message=(
                                    f"import of random.{alias.name} — engine modules may "
                                    "only use explicitly seeded random.Random(seed)"
                                ),
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                bad: Optional[str] = None
                if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                    owner, attr = func.value.id, func.attr
                    if owner == "random" and attr != "Random":
                        bad = f"random.{attr}"
                    elif owner == "time" and attr in _NONDET_TIME_ATTRS:
                        bad = f"time.{attr}"
                    elif owner == "os" and attr == "urandom":
                        bad = "os.urandom"
                    elif owner == "secrets":
                        bad = f"secrets.{attr}"
                    elif owner == "uuid" and attr.startswith("uuid"):
                        bad = f"uuid.{attr}"
                elif isinstance(func, ast.Name) and func.id in from_random:
                    bad = f"random.{func.id}"
                if bad is not None:
                    findings.append(
                        Finding(
                            code="RPR001",
                            path=module.display_path,
                            line=node.lineno,
                            col=node.col_offset,
                            symbol="<module>",
                            message=(
                                f"call to {bad}() — nondeterministic source in an engine "
                                "module; thread an explicit random.Random(seed) instead"
                            ),
                        )
                    )

        # Part 2: raw set iteration inside order-critical methods.
        for owner, func in _walk_functions(module.tree):
            if func.name not in order_critical:
                continue
            cls = model.classes.get(owner.name) if owner is not None else None
            typing_info = _SetTyping(cls, func)
            exempt = _order_insensitive_parents(func)
            for iterable, site in _iteration_sites(func):
                if id(iterable) in exempt:
                    continue
                if not typing_info.is_set(iterable):
                    continue
                findings.append(
                    Finding(
                        code="RPR001",
                        path=module.display_path,
                        line=site.lineno,
                        col=site.col_offset,
                        symbol=_symbol(owner.name if owner else None, func.name),
                        message=(
                            "iteration over a raw set inside order-critical method "
                            f"{func.name}() — wrap in sorted(...) so activation "
                            "selection and hand-off order are bit-reproducible"
                        ),
                    )
                )
    return findings


# --------------------------------------------------------------------------
# RPR002 — slots
# --------------------------------------------------------------------------


def _is_exempt_from_slots(model: ProjectModel, info: ClassInfo) -> bool:
    from .framework import _ENUM_BASES  # stable private constant

    names = {info.name, *info.bases}
    for ancestor in model.ancestors(info.name):
        names.add(ancestor.name)
        names.update(ancestor.bases)
    if names & _ENUM_BASES:
        return True
    if any(n.endswith(("Error", "Exception", "Warning")) for n in names):
        return True
    if "NamedTuple" in names or "Protocol" in names or "TypedDict" in names:
        return True
    return False


@rule(
    "RPR002",
    "slots",
    "classes in declared hot-path modules must define __slots__",
)
def check_slots(model: ProjectModel, config: LintConfig) -> Iterable[Finding]:
    hot = set(config.hot_path_modules)
    findings: List[Finding] = []
    for name, info in model.classes.items():
        if info.module.rel_path not in hot:
            continue
        if info.declares_slots or _is_exempt_from_slots(model, info):
            continue
        findings.append(
            Finding(
                code="RPR002",
                path=info.module.display_path,
                line=info.lineno,
                col=info.node.col_offset,
                symbol=name,
                message=(
                    f"hot-path class {name} has no __slots__ — instances allocate a "
                    "__dict__, breaking the memory-lean contract of "
                    f"{info.module.rel_path} (use __slots__ or @dataclass(slots=True))"
                ),
            )
        )
    return findings


# --------------------------------------------------------------------------
# RPR003 — checkpoint coverage
# --------------------------------------------------------------------------


@rule(
    "RPR003",
    "checkpoint-coverage",
    "algorithms with mutable state must override checkpoint_state/"
    "restore_checkpoint_state; adversary row tables must derive from "
    "ResumableRows",
)
def check_checkpoint_coverage(
    model: ProjectModel, config: LintConfig
) -> Iterable[Finding]:
    findings: List[Finding] = []
    root = config.algorithm_root
    for name, info in model.classes.items():
        if name == root or not model.derives_from(name, root):
            continue
        if not info.mutable_init_attrs:
            continue
        missing = [
            hook
            for hook in ("checkpoint_state", "restore_checkpoint_state")
            if not model.defines_below_root(name, hook, root)
        ]
        if missing:
            attrs = ", ".join(sorted({a for a, _ in info.mutable_init_attrs}))
            findings.append(
                Finding(
                    code="RPR003",
                    path=info.module.display_path,
                    line=info.lineno,
                    col=info.node.col_offset,
                    symbol=name,
                    message=(
                        f"{name} assigns mutable instance state ({attrs}) but does not "
                        f"override {' / '.join(missing)} — resumed runs would silently "
                        "lose this state (see docs/CHECKPOINT.md)"
                    ),
                )
            )

    rows_root = config.rows_root
    for name, info in model.classes.items():
        if not info.module.rel_path.startswith(tuple(config.rows_module_prefixes)):
            continue
        if not name.endswith(config.rows_class_suffix) or name == rows_root:
            continue
        if model.derives_from(name, rows_root):
            continue
        findings.append(
            Finding(
                code="RPR003",
                path=info.module.display_path,
                line=info.lineno,
                col=info.node.col_offset,
                symbol=name,
                message=(
                    f"adversary row table {name} does not derive from {rows_root} — "
                    "it cannot produce a resume cursor, so checkpointed runs "
                    "replaying its injections would diverge"
                ),
            )
        )
    return findings


# --------------------------------------------------------------------------
# RPR004 — sharding hooks
# --------------------------------------------------------------------------


@rule(
    "RPR004",
    "sharding-hooks",
    "supports_sharding=True requires boundary_view + select_segment_activations; "
    "sharding_needs_carry=True additionally requires fold_sibling_state",
)
def check_sharding_hooks(model: ProjectModel, config: LintConfig) -> Iterable[Finding]:
    findings: List[Finding] = []
    root = config.algorithm_root
    for name, info in model.classes.items():
        if name == root:
            continue
        if not info.bool_flags.get("supports_sharding", False):
            continue
        required = ["boundary_view", "select_segment_activations"]
        needs_carry = info.bool_flags.get("sharding_needs_carry", False) or any(
            a.bool_flags.get("sharding_needs_carry", False)
            for a in model.ancestors(name)
        )
        if needs_carry:
            required.append("fold_sibling_state")
        missing = [
            hook
            for hook in required
            if not model.defines_below_root(name, hook, root)
        ]
        if missing:
            findings.append(
                Finding(
                    code="RPR004",
                    path=info.module.display_path,
                    line=info.lineno,
                    col=info.node.col_offset,
                    symbol=name,
                    message=(
                        f"{name} declares supports_sharding=True but does not define "
                        f"{' / '.join(missing)} — segment-exactness is a per-algorithm "
                        "proof obligation; inheriting the root default is not a proof "
                        "(override explicitly, even if only to delegate, and document "
                        "why it is exact; see docs/SHARDING.md)"
                    ),
                )
            )
    return findings


# --------------------------------------------------------------------------
# RPR005 — registry hygiene
# --------------------------------------------------------------------------


@rule(
    "RPR005",
    "registry-hygiene",
    "every registered algorithm/adversary/topology name must be discoverable "
    "from the CLI or docs",
)
def check_registry_hygiene(model: ProjectModel, config: LintConfig) -> Iterable[Finding]:
    findings: List[Finding] = []
    surfaces = model.doc_surfaces
    if not surfaces:
        return findings
    blob = "\n".join(surfaces.values())
    for registration in model.registrations:
        names = (registration.name, *registration.aliases)
        missing = [
            n
            for n in names
            if not re.search(rf"(?<![\w-]){re.escape(n)}(?![\w-])", blob)
        ]
        if missing:
            where = ", ".join(sorted(surfaces))
            findings.append(
                Finding(
                    code="RPR005",
                    path=registration.display_path,
                    line=registration.lineno,
                    col=0,
                    symbol=registration.symbol,
                    message=(
                        f"registered {registration.kind} name(s) "
                        f"{', '.join(repr(n) for n in missing)} not mentioned in any "
                        f"user-facing surface ({where}) — users cannot discover them"
                    ),
                )
            )
    return findings


# --------------------------------------------------------------------------
# RPR006 — error discipline
# --------------------------------------------------------------------------

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _handler_names(node: Optional[ast.expr]) -> List[str]:
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        return [n for e in node.elts for n in _handler_names(e)]
    name = node.id if isinstance(node, ast.Name) else getattr(node, "attr", None)
    return [name] if name else []


@rule(
    "RPR006",
    "error-discipline",
    "no bare/broad except clauses that swallow, no print() in library code",
)
def check_error_discipline(model: ProjectModel, config: LintConfig) -> Iterable[Finding]:
    findings: List[Finding] = []
    print_allowed = set(config.print_allowed_modules)
    print_prefixes = tuple(config.print_allowed_prefixes)
    for module in model.modules:
        owner_of: Dict[int, str] = {}
        for owner, func in _walk_functions(module.tree):
            for node in ast.walk(func):
                owner_of.setdefault(id(node), _symbol(owner.name if owner else None, func.name))

        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                symbol = owner_of.get(id(node), "<module>")
                if node.type is None:
                    findings.append(
                        Finding(
                            code="RPR006",
                            path=module.display_path,
                            line=node.lineno,
                            col=node.col_offset,
                            symbol=symbol,
                            message=(
                                "bare except: — catch a specific exception and re-raise "
                                "as a typed ReproError (ShardingError / CheckpointError "
                                "/ SpecError family)"
                            ),
                        )
                    )
                    continue
                broad = [n for n in _handler_names(node.type) if n in _BROAD_EXCEPTIONS]
                if not broad:
                    continue
                reraises = any(isinstance(sub, ast.Raise) for sub in ast.walk(node))
                if not reraises:
                    findings.append(
                        Finding(
                            code="RPR006",
                            path=module.display_path,
                            line=node.lineno,
                            col=node.col_offset,
                            symbol=symbol,
                            message=(
                                f"except {'/'.join(broad)} without re-raise swallows "
                                "failures — catch narrowly or re-raise as a typed "
                                "ReproError so callers and the CLI see the fault"
                            ),
                        )
                    )
            elif isinstance(node, ast.Call):
                if not (isinstance(node.func, ast.Name) and node.func.id == "print"):
                    continue
                rel = module.rel_path
                if rel in print_allowed or rel.startswith(print_prefixes):
                    continue
                findings.append(
                    Finding(
                        code="RPR006",
                        path=module.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=owner_of.get(id(node), "<module>"),
                        message=(
                            "print() in library code — return data or raise; only the "
                            "CLI surface may write to stdout"
                        ),
                    )
                )
    return findings


# --------------------------------------------------------------------------
# RPR007 — frozen-spec mutation
# --------------------------------------------------------------------------


@rule(
    "RPR007",
    "frozen-spec-mutation",
    "object.__setattr__ is reserved for frozen-spec __post_init__ inside "
    "repro/api/specs.py",
)
def check_frozen_spec_mutation(
    model: ProjectModel, config: LintConfig
) -> Iterable[Finding]:
    findings: List[Finding] = []
    allowed = set(config.frozen_setattr_modules)
    for module in model.modules:
        if module.rel_path in allowed:
            continue
        owner_of: Dict[int, str] = {}
        for owner, func in _walk_functions(module.tree):
            for node in ast.walk(func):
                owner_of.setdefault(id(node), _symbol(owner.name if owner else None, func.name))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                findings.append(
                    Finding(
                        code="RPR007",
                        path=module.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=owner_of.get(id(node), "<module>"),
                        message=(
                            "object.__setattr__ outside repro/api/specs.py — frozen "
                            "specs are immutable after __post_init__; construct a new "
                            "spec instead of mutating in place"
                        ),
                    )
                )
    return findings


def register_builtin_rules() -> None:
    """Importing this module registers every rule; kept for explicitness."""
