"""AST contract linter for the repro engine.

Run as ``python -m repro.devtools.lint src/repro`` from the repository
root.  The rule catalogue, suppression policy and how-to-add-a-rule guide
live in ``docs/LINTING.md``.
"""

from .framework import (
    Baseline,
    BaselineEntry,
    Finding,
    LintConfig,
    LintResult,
    ProjectModel,
    RULES,
    build_model,
    collect_modules,
    rule,
    run_lint,
)
from . import rules as _rules  # noqa: F401  (importing registers RPR001-RPR007)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectModel",
    "RULES",
    "build_model",
    "collect_modules",
    "rule",
    "run_lint",
]
