"""Command-line interface: run simulations and reproduce experiments from a shell.

Installed as ``python -m repro`` (see ``__main__.py``).  Sub-commands:

``experiments``
    List the E1-E9 registry (paper item, claim, benchmark file).

``experiment <id>``
    Show the full metadata of one experiment.

``simulate``
    Build a :class:`~repro.api.ScenarioSpec` from command-line options (or
    load one from ``--spec file.json``), run it through
    :class:`~repro.api.Session`, and print the measured-vs-bound row.  With
    ``--json`` the row is emitted as machine-readable JSON; the exit code is
    non-zero when the measured occupancy exceeds the algorithm's bound.

``bounds``
    Print every closed-form bound for a given ``(n, d, d', ell, rho, sigma)``
    (``--json`` for machine-readable output).

``figure1``
    Render the Figure 1 hierarchy (optionally with a sample trajectory).

``registry``
    List every registered algorithm, adversary and topology name (with
    aliases) usable in a ``ScenarioSpec`` — the full catalogue, including
    names the ``simulate`` shortcuts do not expose, lives in
    ``docs/REGISTRY.md``.

``service``
    The crash-safe job service (docs/SERVICE.md): ``serve`` runs the durable
    server on a data directory, ``submit`` queues a scenario spec, and
    ``ls`` / ``info`` / ``logs`` / ``cancel`` / ``stats`` / ``cleanup`` /
    ``drain`` manage it.  Accepted jobs survive ``kill -9`` of the server;
    every failure mode is a typed error (exit code 2).

Examples
--------
::

    python -m repro experiments
    python -m repro simulate --algorithm ppts --nodes 64 --destinations 12 \
        --rho 1.0 --sigma 2 --rounds 300
    python -m repro simulate --algorithm hpts --levels 3 --nodes 64 --rho 0.33
    python -m repro simulate --spec scenario.json --json
    python -m repro bounds --nodes 64 --destinations 12 --rho 0.5 --sigma 2 --json
    python -m repro figure1 --branching 2 --levels 4 --source 2 --destination 13
    python -m repro service serve --data jobs.d &
    python -m repro service submit --data jobs.d --spec scenario.json --wait
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Optional, Sequence

from .adversary.generators import hierarchy_random_destinations
from .analysis.tables import format_kv, format_table
from .api import ScenarioSpec, Session, reports_to_table
from .api.builder import Scenario
from .core import bounds
from .experiments.figures import render_figure1, trajectory_table
from .experiments.registry import get_experiment, list_experiments
from .network.errors import ReproError

__all__ = ["main", "build_parser"]

#: Algorithms selectable from the command line, with the workload family each
#: one is paired with by default.
ALGORITHMS = ("pts", "ppts", "hpts", "local", "downhill", "greedy")


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AQT buffer-space reproduction: simulations, bounds and experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("experiments", help="list the E1-E9 experiment registry")

    show = subparsers.add_parser("experiment", help="show one experiment's metadata")
    show.add_argument("id", help="experiment id, e.g. E4")

    simulate = subparsers.add_parser("simulate", help="run one scenario spec")
    simulate.add_argument("--algorithm", choices=ALGORITHMS, default="ppts")
    simulate.add_argument("--nodes", type=int, default=64, help="line length n")
    simulate.add_argument("--destinations", type=int, default=8, help="number of destinations d")
    simulate.add_argument("--rho", type=float, default=1.0)
    simulate.add_argument("--sigma", type=float, default=2.0)
    simulate.add_argument("--rounds", type=int, default=200)
    simulate.add_argument("--levels", type=int, default=2, help="HPTS hierarchy levels")
    simulate.add_argument("--locality", type=int, default=2, help="radius for --algorithm local")
    simulate.add_argument("--policy", default="FIFO", help="greedy policy name")
    simulate.add_argument(
        "--workload",
        choices=("stress", "round_robin", "nested", "random", "hierarchy"),
        default=None,
        help="workload kind (defaults to the natural one for the algorithm)",
    )
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="load a full ScenarioSpec from this JSON file (other scenario "
        "options are ignored; see repro.api for the schema)",
    )
    simulate.add_argument(
        "--json",
        action="store_true",
        help="emit the result row as JSON instead of an ASCII table",
    )
    simulate.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="K",
        help="write a resumable snapshot to --checkpoint after every K "
        "injection rounds (each save atomically replaces the previous one)",
    )
    simulate.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="checkpoint file for --checkpoint-every",
    )
    simulate.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="resume a checkpointed run from this file and drive it to "
        "completion (scenario options are taken from the embedded spec; "
        "--spec, if given, must describe the same scenario)",
    )
    simulate.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition the line into N contiguous segments and run one "
        "engine per worker process (results are bit-identical to a "
        "single-process run; line topologies and non-adaptive adversaries "
        "only)",
    )
    simulate.add_argument(
        "--engine",
        choices=("delta", "batch", "auto"),
        default=None,
        help="execution engine: 'delta' is the per-round object engine, "
        "'batch' the vectorized batch-round kernel (line topologies, "
        "non-adaptive adversaries and the regular algorithm family only; "
        "anything else exits with code 2), 'auto' tries the batch kernel "
        "and silently falls back (results are bit-identical either way)",
    )
    simulate.add_argument(
        "--batch-rounds",
        type=int,
        default=None,
        metavar="K",
        help="rounds advanced per batch window for --engine batch/auto "
        "(a sync cadence only — results do not depend on it)",
    )
    simulate.add_argument(
        "--recovery",
        choices=("fail", "restart", "fold"),
        default=None,
        help="what the sharded coordinator does when a worker dies: "
        "'fail' aborts (default), 'restart' respawns a replacement and "
        "resumes from the last consistent checkpoint cut, 'fold' merges "
        "the dead segment into a neighbour (results stay bit-identical "
        "in every mode)",
    )
    simulate.add_argument(
        "--max-worker-restarts",
        type=int,
        default=None,
        metavar="N",
        help="recovery budget: after N worker failures the run aborts "
        "with RecoveryExhaustedError (exit code 2)",
    )
    simulate.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-phase reply deadline for sharded workers; a worker that "
        "stays silent longer is declared failed and recovery kicks in",
    )
    simulate.add_argument(
        "--faults",
        metavar="FILE",
        default=None,
        help="inject a deterministic FaultPlan (JSON, see docs/FAULTS.md) "
        "into the sharded run; requires --shards > 1 (or a spec with "
        "policy.shards > 1) and cannot be combined with --resume",
    )

    bounds_cmd = subparsers.add_parser("bounds", help="print the closed-form bounds")
    bounds_cmd.add_argument("--nodes", type=int, default=64)
    bounds_cmd.add_argument("--destinations", type=int, default=8)
    bounds_cmd.add_argument("--destination-depth", type=int, default=4)
    bounds_cmd.add_argument("--levels", type=int, default=None)
    bounds_cmd.add_argument("--rho", type=float, default=0.5)
    bounds_cmd.add_argument("--sigma", type=float, default=2.0)
    bounds_cmd.add_argument(
        "--json", action="store_true", help="emit the bounds as JSON"
    )

    figure = subparsers.add_parser("figure1", help="render the Figure 1 hierarchy")
    figure.add_argument("--branching", type=int, default=2)
    figure.add_argument("--levels", type=int, default=4)
    figure.add_argument("--source", type=int, default=None)
    figure.add_argument("--destination", type=int, default=None)

    registry = subparsers.add_parser(
        "registry",
        help="list registered algorithm/adversary/topology names "
        "(see docs/REGISTRY.md)",
    )
    registry.add_argument(
        "--kind",
        choices=("algorithms", "adversaries", "topologies"),
        default=None,
        help="restrict the listing to one registry",
    )
    registry.add_argument(
        "--json", action="store_true", help="emit the catalogue as JSON"
    )

    service = subparsers.add_parser(
        "service",
        help="the crash-safe job service (docs/SERVICE.md)",
    )
    verbs = service.add_subparsers(dest="service_command", required=True)

    def _service_common(verb: argparse.ArgumentParser) -> None:
        verb.add_argument(
            "--data",
            metavar="DIR",
            default="service-data",
            help="service data directory (journal + job files); the socket "
            "defaults to DIR/service.sock",
        )
        verb.add_argument(
            "--socket",
            metavar="PATH",
            default=None,
            help="Unix socket path (overrides the --data default)",
        )

    serve = verbs.add_parser(
        "serve", help="run the durable job server on a data directory"
    )
    _service_common(serve)
    serve.add_argument(
        "--max-running", type=int, default=2, metavar="N",
        help="worker-pool width: concurrent job leases",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=64, metavar="N",
        help="admission bound on queued jobs (past it submissions are "
        "rejected with ServiceOverloadedError)",
    )
    serve.add_argument(
        "--lease-seconds", type=float, default=30.0, metavar="S",
        help="heartbeat staleness after which a worker is declared dead "
        "and its job retried from the last checkpoint",
    )
    serve.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="default per-job retry budget for worker failures",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=20, metavar="K",
        help="default per-job checkpoint cadence (injection rounds)",
    )
    serve.add_argument(
        "--faults", metavar="FILE", default=None,
        help="inject a deterministic service-level FaultPlan (JSON with "
        "phases queued/running/checkpointing/draining; see docs/SERVICE.md)",
    )
    serve.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on journal appends (faster; loses power-failure "
        "durability, process crashes stay safe)",
    )

    submit = verbs.add_parser("submit", help="queue one scenario spec")
    _service_common(submit)
    submit.add_argument(
        "--spec", metavar="FILE", required=True,
        help="ScenarioSpec JSON file to run",
    )
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--submit-key", default=None, metavar="KEY",
        help="idempotency key: resubmitting with the same key returns the "
        "already-admitted job instead of queueing a duplicate (use it when "
        "retrying after a lost reply)",
    )
    submit.add_argument("--max-retries", type=int, default=None, metavar="N")
    submit.add_argument("--checkpoint-every", type=int, default=None, metavar="K")
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal and print its outcome "
        "(a failed job exits 2 with its typed error)",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="how long --wait waits before giving up",
    )
    submit.add_argument("--json", action="store_true")

    ls = verbs.add_parser("ls", help="list jobs")
    _service_common(ls)
    ls.add_argument("--json", action="store_true")

    info = verbs.add_parser("info", help="show one job's full state")
    _service_common(info)
    info.add_argument("job", help="job id, e.g. job-000003")
    info.add_argument("--json", action="store_true")

    logs = verbs.add_parser("logs", help="print one job's service+worker log")
    _service_common(logs)
    logs.add_argument("job")

    cancel = verbs.add_parser("cancel", help="cancel a queued or running job")
    _service_common(cancel)
    cancel.add_argument("job")

    stats = verbs.add_parser("stats", help="queue and worker-pool statistics")
    _service_common(stats)
    stats.add_argument("--json", action="store_true")

    cleanup = verbs.add_parser(
        "cleanup", help="purge terminal jobs and their files"
    )
    _service_common(cleanup)

    drain = verbs.add_parser(
        "drain",
        help="gracefully stop the server: admission ends, running jobs are "
        "checkpointed and requeued for the next serve",
    )
    _service_common(drain)

    return parser


def _command_experiments() -> int:
    rows = [
        {
            "id": experiment.id,
            "paper item": experiment.paper_item,
            "claim": experiment.claim,
            "benchmark": experiment.benchmark,
        }
        for experiment in list_experiments()
    ]
    print(format_table(rows, title="Reproduced experiments"))
    return 0


def _command_experiment(experiment_id: str) -> int:
    experiment = get_experiment(experiment_id)
    print(
        format_kv(
            {
                "id": experiment.id,
                "paper item": experiment.paper_item,
                "claim": experiment.claim,
                "workload": experiment.workload,
                "modules": ", ".join(experiment.modules),
                "benchmark": experiment.benchmark,
            },
            title=f"Experiment {experiment.id}",
        )
    )
    return 0


def _finish_spec(
    scenario: Scenario, name: str, seed: Optional[int]
) -> ScenarioSpec:
    """Label the scenario, apply the seed only when one was given (keeping
    unseeded random workloads fresh per invocation), and freeze it."""
    scenario.named(name)
    if seed is not None:
        scenario.seed(seed)
    return scenario.build()


def _build_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Map the flat command-line options onto a declarative scenario spec."""
    if args.algorithm == "hpts":
        branching = max(2, round(args.nodes ** (1.0 / args.levels)))
        num_nodes = branching**args.levels
        kind = args.workload if args.workload in ("hierarchy", "random") else "hierarchy"
        scenario = Scenario.line(num_nodes).algorithm(
            "hpts", levels=args.levels, branching=branching, rho=args.rho
        )
        if kind == "hierarchy":
            scenario.adversary(
                "hierarchy", rho=args.rho, sigma=args.sigma, rounds=args.rounds,
                branching=branching, levels=args.levels,
            )
        else:
            scenario.adversary(
                "bounded", rho=args.rho, sigma=args.sigma, rounds=args.rounds,
                num_destinations=hierarchy_random_destinations(
                    num_nodes, branching, args.levels
                ),
            )
        return _finish_spec(scenario, f"hierarchy/{kind}", args.seed)

    if args.algorithm in ("pts", "local", "downhill"):
        kind = args.workload if args.workload in ("stress", "random") else "stress"
        scenario = Scenario.line(args.nodes)
        if args.algorithm == "pts":
            scenario.algorithm("pts")
        elif args.algorithm == "local":
            scenario.algorithm("local", locality=args.locality)
        else:
            scenario.algorithm("downhill")
        adversary = "burst" if kind == "stress" else "single"
        scenario.adversary(
            adversary, rho=args.rho, sigma=args.sigma, rounds=args.rounds
        )
        return _finish_spec(scenario, f"single-dest/{kind}", args.seed)

    # ppts / greedy share the multi-destination line setting.
    kind = (
        args.workload
        if args.workload in ("round_robin", "nested", "random")
        else "round_robin"
    )
    scenario = Scenario.line(args.nodes)
    if args.algorithm == "greedy":
        scenario.algorithm("greedy", policy=args.policy)
    else:
        scenario.algorithm("ppts")
    adversary = {"round_robin": "round-robin", "nested": "nested", "random": "bounded"}[kind]
    scenario.adversary(
        adversary, rho=args.rho, sigma=args.sigma, rounds=args.rounds,
        num_destinations=args.destinations,
    )
    return _finish_spec(scenario, f"multi-dest/{kind}", args.seed)


def _with_checkpoint_policy(spec: ScenarioSpec, args: argparse.Namespace) -> ScenarioSpec:
    """Fold the checkpoint/sharding/recovery/engine flags into the spec's policy.

    Applied identically to fresh and resumed runs (all of these fields are
    outside the resume-identity hash, so this never trips the spec check).
    """
    overrides = {}
    if args.checkpoint_every is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
        overrides["checkpoint_path"] = args.checkpoint
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.recovery is not None:
        overrides["recovery"] = args.recovery
    if args.max_worker_restarts is not None:
        overrides["max_worker_restarts"] = args.max_worker_restarts
    if args.heartbeat_timeout is not None:
        overrides["heartbeat_timeout"] = args.heartbeat_timeout
    if args.engine is not None:
        overrides["engine"] = args.engine
    if args.batch_rounds is not None:
        overrides["batch_rounds"] = args.batch_rounds
    if not overrides:
        return spec
    return Scenario.from_spec(spec).policy(**overrides).build()


def _command_simulate(args: argparse.Namespace) -> int:
    if args.checkpoint_every is not None and args.checkpoint is None:
        raise ReproError("--checkpoint-every requires --checkpoint FILE")
    faults = None
    if args.faults is not None:
        if args.resume is not None:
            raise ReproError(
                "--faults cannot be combined with --resume: fault plans "
                "describe a full run from round 0"
            )
        from .network.faults import FaultPlan

        with open(args.faults, "r", encoding="utf-8") as handle:
            faults = FaultPlan.from_json(handle.read())
    spec = None
    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
    if args.resume is not None:
        # Scenario flags are ignored: the checkpoint's embedded spec is the
        # scenario.  An explicit --spec must hash to the same scenario or the
        # resume is refused (CheckpointSpecMismatchError -> exit code 2).
        from .checkpoint import load_checkpoint

        loaded = load_checkpoint(args.resume)
        if spec is None and loaded.spec is not None:
            spec = ScenarioSpec.from_dict(loaded.spec)
        if spec is None and args.checkpoint_every is not None:
            raise ReproError(
                "--checkpoint-every with --resume needs a scenario: the "
                "checkpoint has no embedded spec and no --spec was given"
            )
        if spec is not None:
            spec = _with_checkpoint_policy(spec, args)
        report = Session().resume(loaded, spec=spec)
    else:
        if spec is None:
            spec = _build_spec(args)
        report = Session().run(_with_checkpoint_policy(spec, args), faults=faults)
    if args.json:
        row = report.as_row()
        if report.recovery is not None:
            # Sharded runs surface their recovery telemetry (worker restarts
            # absorbed, seconds spent restitching) next to the result, so a
            # run that survived faults is distinguishable from one that never
            # saw any — the results themselves are bit-identical.
            row["recovery"] = report.recovery
        if report.engine is not None:
            # Engine routing telemetry: which engine ran and, for
            # --engine auto, why a batch refusal fell back to delta — silent
            # fallbacks otherwise look exactly like batch runs (results are
            # bit-identical by construction).
            row["engine"] = report.engine
        print(json.dumps(row, indent=2, sort_keys=True))
    else:
        print(reports_to_table([report], title="Simulation result"))
    return 0 if report.within_bound else 1


def _command_bounds(args: argparse.Namespace) -> int:
    levels = args.levels if args.levels is not None else bounds.optimal_levels(args.rho)
    values = {
        "PTS (Prop 3.1)": bounds.pts_upper_bound(args.sigma),
        "PPTS (Prop 3.2)": bounds.ppts_upper_bound(args.destinations, args.sigma),
        "tree PPTS (Prop 3.5)": bounds.tree_ppts_upper_bound(
            args.destination_depth, args.sigma
        ),
        f"HPTS, ell={levels} (Thm 4.1)": round(
            bounds.hpts_upper_bound(args.nodes, levels, args.sigma), 2
        ),
        f"lower bound, ell={levels} (Thm 5.1)": round(
            bounds.lower_bound(args.nodes, levels, args.rho), 2
        ),
        "destination form upper O(k d^(1/k))": round(
            bounds.destination_upper_bound(args.destinations, args.rho, args.sigma), 2
        ),
        "destination form lower": round(
            bounds.destination_lower_bound(args.destinations, args.rho), 2
        ),
    }
    if args.json:
        payload = {
            "parameters": {
                "nodes": args.nodes,
                "destinations": args.destinations,
                "destination_depth": args.destination_depth,
                "levels": levels,
                "rho": args.rho,
                "sigma": args.sigma,
            },
            "bounds": values,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        format_kv(
            values,
            title=(
                f"Bounds for n={args.nodes}, d={args.destinations}, "
                f"d'={args.destination_depth}, rho={args.rho}, sigma={args.sigma}"
            ),
        )
    )
    return 0


def _command_figure1(args: argparse.Namespace) -> int:
    trajectory = None
    if args.source is not None and args.destination is not None:
        trajectory = (args.source, args.destination)
    print(render_figure1(args.branching, args.levels, trajectory=trajectory))
    if trajectory is not None:
        print()
        print(
            format_table(
                trajectory_table(args.branching, args.levels, *trajectory),
                title=f"Segments of {trajectory[0]} -> {trajectory[1]}",
            )
        )
    return 0


def _command_registry(args: argparse.Namespace) -> int:
    from .api.registry import ADVERSARIES, ALGORITHMS, TOPOLOGIES

    registries = {
        "algorithms": ALGORITHMS,
        "adversaries": ADVERSARIES,
        "topologies": TOPOLOGIES,
    }
    if args.kind is not None:
        registries = {args.kind: registries[args.kind]}
    if args.json:
        payload = {kind: reg.catalog() for kind, reg in registries.items()}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for kind, reg in registries.items():
        rows = [
            {
                "name": row["name"],
                "aliases": ", ".join(row["aliases"]) or "-",
                "summary": row["summary"],
            }
            for row in reg.catalog()
        ]
        print(format_table(rows, title=f"Registered {kind}"))
        print()
    print("Full catalogue with parameters: docs/REGISTRY.md")
    return 0


def _service_socket(args: argparse.Namespace) -> str:
    if args.socket is not None:
        return str(args.socket)
    return os.path.join(args.data, "service.sock")


def _service_client(args: argparse.Namespace) -> "Any":
    from .service import ServiceClient

    return ServiceClient(_service_socket(args))


def _command_service_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import JobService

    faults = None
    if args.faults is not None:
        from .network.faults import FaultPlan

        with open(args.faults, "r", encoding="utf-8") as handle:
            faults = FaultPlan.from_json(handle.read())
    service = JobService(
        args.data,
        socket_path=args.socket,
        max_running=args.max_running,
        max_queue_depth=args.max_queue_depth,
        lease_seconds=args.lease_seconds,
        default_max_retries=args.max_retries,
        default_checkpoint_every=args.checkpoint_every,
        faults=faults,
        fsync=not args.no_fsync,
        crash_mode="exit",  # injected server crashes die for real, like kill -9
    )
    service.start()
    print(f"serving on {service.socket_path} (data: {service.data_dir})")
    interrupted = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: interrupted.set())
    # Wake on SIGTERM/SIGINT (graceful drain) or on the server ending by
    # itself (client-requested drain, or an injected crash).
    while service.is_alive() and not interrupted.wait(0.2):
        pass
    service.stop()
    print("drained: running jobs checkpointed and requeued; journal flushed")
    return 0


def _command_service(args: argparse.Namespace) -> int:
    from .service.errors import JobFailedError

    verb = args.service_command
    if verb == "serve":
        return _command_service_serve(args)
    client = _service_client(args)
    if verb == "submit":
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec_payload = json.loads(handle.read())
        reply = client.submit(
            spec_payload,
            tenant=args.tenant,
            priority=args.priority,
            submit_key=args.submit_key,
            max_retries=args.max_retries,
            checkpoint_every=args.checkpoint_every,
        )
        if not args.wait:
            if args.json:
                print(json.dumps(reply, indent=2, sort_keys=True))
            else:
                print(f"{reply['job']} {reply['state']}")
            return 0
        view = client.wait(reply["job"], timeout=args.timeout)
        if view["state"] == "failed":
            raise JobFailedError(
                f"{view['job_id']} failed: {view.get('error_type')}: "
                f"{view.get('error_message')}"
            )
        if args.json:
            print(json.dumps(view, indent=2, sort_keys=True))
        else:
            print(format_kv(_job_view_row(view), title=view["job_id"]))
        return 0
    if verb == "ls":
        rows = client.ls()
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        elif rows:
            print(format_table(rows, title="Jobs"))
        else:
            print("no jobs")
        return 0
    if verb == "info":
        view = client.info(args.job)
        if args.json:
            print(json.dumps(view, indent=2, sort_keys=True))
        else:
            print(format_kv(_job_view_row(view), title=view["job_id"]))
        return 0
    if verb == "logs":
        sys.stdout.write(client.logs(args.job))
        return 0
    if verb == "cancel":
        reply = client.cancel(args.job)
        print(f"{reply['job']} {reply['state']}")
        return 0
    if verb == "stats":
        payload = client.stats()
        payload.pop("ok", None)
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(format_kv(payload, title="Service stats"))
        return 0
    if verb == "cleanup":
        purged = client.cleanup()
        print(f"purged {len(purged)} terminal job(s)" +
              (f": {', '.join(purged)}" if purged else ""))
        return 0
    if verb == "drain":
        client.drain()
        print("drain requested: the server stops admitting and exits after "
              "requeueing running jobs")
        return 0
    raise ReproError(f"unknown service verb {verb!r}")


def _job_view_row(view: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten a job info view for the key-value formatter."""
    row = {key: value for key, value in view.items() if key != "result"}
    result = view.get("result")
    if isinstance(result, dict):
        for key in ("max_occupancy", "bound", "within_bound"):
            if key in result:
                row[f"result.{key}"] = result[key]
    return row


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "experiments":
            return _command_experiments()
        if args.command == "experiment":
            return _command_experiment(args.id)
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "bounds":
            return _command_bounds(args)
        if args.command == "figure1":
            return _command_figure1(args)
        if args.command == "registry":
            return _command_registry(args)
        if args.command == "service":
            return _command_service(args)
        parser.error(f"unknown command {args.command!r}")
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0
