"""Command-line interface: run simulations and reproduce experiments from a shell.

Installed as ``python -m repro`` (see ``__main__.py``).  Sub-commands:

``experiments``
    List the E1-E9 registry (paper item, claim, benchmark file).

``experiment <id>``
    Show the full metadata of one experiment.

``simulate``
    Build a workload + algorithm from command-line options, run it, and print
    the measured-vs-bound row.  This is the quickest way to poke at the system
    without writing a script.

``bounds``
    Print every closed-form bound for a given ``(n, d, d', ell, rho, sigma)``.

``figure1``
    Render the Figure 1 hierarchy (optionally with a sample trajectory).

Examples
--------
::

    python -m repro experiments
    python -m repro simulate --algorithm ppts --nodes 64 --destinations 12 \
        --rho 1.0 --sigma 2 --rounds 300
    python -m repro simulate --algorithm hpts --levels 3 --nodes 64 --rho 0.33
    python -m repro bounds --nodes 64 --destinations 12 --rho 0.5 --sigma 2
    python -m repro figure1 --branching 2 --levels 4 --source 2 --destination 13
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis.tables import format_kv, format_table
from .baselines.greedy import GreedyForwarding
from .baselines.policies import policy_by_name
from .core import bounds
from .core.hpts import HierarchicalPeakToSink
from .core.local import DownhillForwarding, LocalThresholdForwarding
from .core.ppts import ParallelPeakToSink
from .core.pts import PeakToSink
from .experiments.figures import render_figure1, trajectory_table
from .experiments.harness import rows_to_table, run_workload
from .experiments.registry import get_experiment, list_experiments
from .experiments.workloads import (
    hierarchical_workload,
    multi_destination_workload,
    single_destination_workload,
)
from .network.errors import ReproError

__all__ = ["main", "build_parser"]

#: Algorithms selectable from the command line, with the workload family each
#: one is paired with by default.
ALGORITHMS = ("pts", "ppts", "hpts", "local", "downhill", "greedy")


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AQT buffer-space reproduction: simulations, bounds and experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("experiments", help="list the E1-E9 experiment registry")

    show = subparsers.add_parser("experiment", help="show one experiment's metadata")
    show.add_argument("id", help="experiment id, e.g. E4")

    simulate = subparsers.add_parser("simulate", help="run one workload/algorithm pair")
    simulate.add_argument("--algorithm", choices=ALGORITHMS, default="ppts")
    simulate.add_argument("--nodes", type=int, default=64, help="line length n")
    simulate.add_argument("--destinations", type=int, default=8, help="number of destinations d")
    simulate.add_argument("--rho", type=float, default=1.0)
    simulate.add_argument("--sigma", type=float, default=2.0)
    simulate.add_argument("--rounds", type=int, default=200)
    simulate.add_argument("--levels", type=int, default=2, help="HPTS hierarchy levels")
    simulate.add_argument("--locality", type=int, default=2, help="radius for --algorithm local")
    simulate.add_argument("--policy", default="FIFO", help="greedy policy name")
    simulate.add_argument(
        "--workload",
        choices=("stress", "round_robin", "nested", "random", "hierarchy"),
        default=None,
        help="workload kind (defaults to the natural one for the algorithm)",
    )
    simulate.add_argument("--seed", type=int, default=None)

    bounds_cmd = subparsers.add_parser("bounds", help="print the closed-form bounds")
    bounds_cmd.add_argument("--nodes", type=int, default=64)
    bounds_cmd.add_argument("--destinations", type=int, default=8)
    bounds_cmd.add_argument("--destination-depth", type=int, default=4)
    bounds_cmd.add_argument("--levels", type=int, default=None)
    bounds_cmd.add_argument("--rho", type=float, default=0.5)
    bounds_cmd.add_argument("--sigma", type=float, default=2.0)

    figure = subparsers.add_parser("figure1", help="render the Figure 1 hierarchy")
    figure.add_argument("--branching", type=int, default=2)
    figure.add_argument("--levels", type=int, default=4)
    figure.add_argument("--source", type=int, default=None)
    figure.add_argument("--destination", type=int, default=None)

    return parser


def _command_experiments() -> int:
    rows = [
        {
            "id": experiment.id,
            "paper item": experiment.paper_item,
            "claim": experiment.claim,
            "benchmark": experiment.benchmark,
        }
        for experiment in list_experiments()
    ]
    print(format_table(rows, title="Reproduced experiments"))
    return 0


def _command_experiment(experiment_id: str) -> int:
    experiment = get_experiment(experiment_id)
    print(
        format_kv(
            {
                "id": experiment.id,
                "paper item": experiment.paper_item,
                "claim": experiment.claim,
                "workload": experiment.workload,
                "modules": ", ".join(experiment.modules),
                "benchmark": experiment.benchmark,
            },
            title=f"Experiment {experiment.id}",
        )
    )
    return 0


def _build_workload(args: argparse.Namespace):
    if args.algorithm == "hpts":
        branching = round(args.nodes ** (1.0 / args.levels))
        kind = args.workload or "hierarchy"
        if kind not in ("hierarchy", "random"):
            kind = "hierarchy"
        return hierarchical_workload(
            max(2, branching), args.levels, args.rho, args.sigma, args.rounds,
            kind=kind, seed=args.seed,
        )
    if args.algorithm in ("pts", "local", "downhill"):
        kind = args.workload or "stress"
        if kind not in ("stress", "random"):
            kind = "stress"
        return single_destination_workload(
            args.nodes, args.rho, args.sigma, args.rounds, kind=kind, seed=args.seed
        )
    kind = args.workload or "round_robin"
    if kind not in ("round_robin", "nested", "random"):
        kind = "round_robin"
    return multi_destination_workload(
        args.nodes, args.destinations, args.rho, args.sigma, args.rounds,
        kind=kind, seed=args.seed,
    )


def _build_algorithm_factory(args: argparse.Namespace):
    if args.algorithm == "pts":
        return lambda workload: PeakToSink(workload.topology)
    if args.algorithm == "ppts":
        return lambda workload: ParallelPeakToSink(workload.topology)
    if args.algorithm == "hpts":
        return lambda workload: HierarchicalPeakToSink(
            workload.topology,
            workload.params["ell"],
            workload.params["m"],
            rho=workload.rho,
        )
    if args.algorithm == "local":
        return lambda workload: LocalThresholdForwarding(
            workload.topology, locality=args.locality
        )
    if args.algorithm == "downhill":
        return lambda workload: DownhillForwarding(workload.topology)
    if args.algorithm == "greedy":
        policy = policy_by_name(args.policy)
        return lambda workload: GreedyForwarding(workload.topology, policy)
    raise ReproError(f"unknown algorithm {args.algorithm!r}")


def _command_simulate(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    factory = _build_algorithm_factory(args)
    row = run_workload(workload, factory)
    print(rows_to_table([row], title="Simulation result"))
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    levels = args.levels if args.levels is not None else bounds.optimal_levels(args.rho)
    values = {
        "PTS (Prop 3.1)": bounds.pts_upper_bound(args.sigma),
        "PPTS (Prop 3.2)": bounds.ppts_upper_bound(args.destinations, args.sigma),
        "tree PPTS (Prop 3.5)": bounds.tree_ppts_upper_bound(
            args.destination_depth, args.sigma
        ),
        f"HPTS, ell={levels} (Thm 4.1)": round(
            bounds.hpts_upper_bound(args.nodes, levels, args.sigma), 2
        ),
        f"lower bound, ell={levels} (Thm 5.1)": round(
            bounds.lower_bound(args.nodes, levels, args.rho), 2
        ),
        "destination form upper O(k d^(1/k))": round(
            bounds.destination_upper_bound(args.destinations, args.rho, args.sigma), 2
        ),
        "destination form lower": round(
            bounds.destination_lower_bound(args.destinations, args.rho), 2
        ),
    }
    print(
        format_kv(
            values,
            title=(
                f"Bounds for n={args.nodes}, d={args.destinations}, "
                f"d'={args.destination_depth}, rho={args.rho}, sigma={args.sigma}"
            ),
        )
    )
    return 0


def _command_figure1(args: argparse.Namespace) -> int:
    trajectory = None
    if args.source is not None and args.destination is not None:
        trajectory = (args.source, args.destination)
    print(render_figure1(args.branching, args.levels, trajectory=trajectory))
    if trajectory is not None:
        print()
        print(
            format_table(
                trajectory_table(args.branching, args.levels, *trajectory),
                title=f"Segments of {trajectory[0]} -> {trajectory[1]}",
            )
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "experiments":
            return _command_experiments()
        if args.command == "experiment":
            return _command_experiment(args.id)
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "bounds":
            return _command_bounds(args)
        if args.command == "figure1":
            return _command_figure1(args)
        parser.error(f"unknown command {args.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0
