"""Unit tests for the deterministic fault-injection subsystem.

Fault plans are pure data: frozen, validated at construction, JSON
round-trippable, and reproducibly samplable from a seed.  The injector is
the only mutable piece, and its contract — crash/slow events fire exactly
once, drop events hold a token count — is what makes chaos runs replayable.
"""

from __future__ import annotations

import pytest

from repro.network.errors import ConfigurationError
from repro.network.faults import (
    FAULT_KINDS,
    FAULT_PHASES,
    SERVICE_FAULT_PHASES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)


# ---------------------------------------------------------------------------
# FaultEvent validation
# ---------------------------------------------------------------------------


def test_event_accepts_every_kind_and_phase():
    for kind in FAULT_KINDS:
        for phase in FAULT_PHASES + SERVICE_FAULT_PHASES:
            event = FaultEvent(
                kind=kind, round=0, segment=0, phase=phase,
                delay=0.1 if kind == "slow" else 0.0,
            )
            assert event.kind == kind and event.phase == phase


def test_service_phases_are_disjoint_from_engine_phases():
    # Job-service plans reuse FaultEvent with lifecycle phases; the two
    # namespaces must never collide or a plan becomes ambiguous.
    assert set(FAULT_PHASES).isdisjoint(SERVICE_FAULT_PHASES)
    assert SERVICE_FAULT_PHASES == ("queued", "running", "checkpointing",
                                    "draining")


def test_unknown_phase_error_names_both_phase_lists():
    with pytest.raises(ConfigurationError) as excinfo:
        FaultEvent(kind="crash", round=0, segment=0, phase="warmup")
    message = str(excinfo.value)
    for phase in FAULT_PHASES + SERVICE_FAULT_PHASES:
        assert phase in message


def test_sample_never_draws_service_phases():
    # FaultPlan.sample targets the sharded engine; service plans are always
    # written explicitly (docs/SERVICE.md).
    plan = FaultPlan.sample(7, rounds=50, shards=4, events=12)
    assert all(event.phase in FAULT_PHASES for event in plan.events)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "explode", "round": 0, "segment": 0},
        {"kind": "crash", "round": 0, "segment": 0, "phase": "warmup"},
        {"kind": "crash", "round": -1, "segment": 0},
        {"kind": "crash", "round": True, "segment": 0},
        {"kind": "crash", "round": 1.5, "segment": 0},
        {"kind": "crash", "round": 0, "segment": -2},
        {"kind": "slow", "round": 0, "segment": 0},  # delay defaults to 0
        {"kind": "slow", "round": 0, "segment": 0, "delay": -0.5},
        {"kind": "drop", "round": 0, "segment": 0, "count": 0},
        {"kind": "drop", "round": 0, "segment": 0, "count": True},
    ],
)
def test_event_rejects_bad_coordinates(kwargs):
    with pytest.raises(ConfigurationError):
        FaultEvent(**kwargs)


def test_event_from_dict_rejects_unknown_and_missing_keys():
    with pytest.raises(ConfigurationError, match="unknown keys"):
        FaultEvent.from_dict(
            {"kind": "crash", "round": 1, "segment": 0, "severity": 9}
        )
    with pytest.raises(ConfigurationError, match="missing required key"):
        FaultEvent.from_dict({"kind": "crash", "round": 1})
    with pytest.raises(ConfigurationError, match="JSON object"):
        FaultEvent.from_dict(["crash", 1, 0])  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# FaultPlan construction and JSON round-trip
# ---------------------------------------------------------------------------


def test_plan_coerces_event_lists_and_rejects_non_events():
    plan = FaultPlan(events=[FaultEvent(kind="crash", round=2, segment=1)])
    assert isinstance(plan.events, tuple)
    with pytest.raises(ConfigurationError, match="FaultEvent"):
        FaultPlan(events=({"kind": "crash"},))  # type: ignore[arg-type]


def test_plan_truthiness_and_hashability():
    assert not FaultPlan()
    plan = FaultPlan(events=(FaultEvent(kind="drop", round=0, segment=0),))
    assert plan
    assert hash(plan) == hash(FaultPlan(events=plan.events))


def test_plan_json_round_trip_is_exact():
    plan = FaultPlan(
        events=(
            FaultEvent(kind="crash", round=7, segment=1, phase="select"),
            FaultEvent(kind="slow", round=3, segment=0, delay=0.25),
            FaultEvent(kind="drop", round=9, segment=2, phase="finish",
                       count=2),
        ),
        seed=99,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_from_json_rejects_garbage_and_bad_versions():
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        FaultPlan.from_json("{nope")
    with pytest.raises(ConfigurationError, match="version"):
        FaultPlan.from_dict({"version": 999, "events": []})
    with pytest.raises(ConfigurationError, match="unknown keys"):
        FaultPlan.from_dict({"events": [], "bonus": True})
    with pytest.raises(ConfigurationError, match="must be a list"):
        FaultPlan.from_dict({"events": "crash"})


def test_sample_is_a_pure_function_of_its_arguments():
    first = FaultPlan.sample(42, rounds=50, shards=4)
    second = FaultPlan.sample(42, rounds=50, shards=4)
    other = FaultPlan.sample(43, rounds=50, shards=4)
    assert first == second
    assert first != other
    assert first.seed == 42
    assert len(first.events) == 3
    for event in first.events:
        assert 0 <= event.round < 50
        assert 0 <= event.segment < 4


def test_sample_validates_bounds_and_kinds():
    with pytest.raises(ConfigurationError):
        FaultPlan.sample(1, rounds=0, shards=2)
    with pytest.raises(ConfigurationError):
        FaultPlan.sample(1, rounds=5, shards=2, kinds=("crash", "meteor"))
    crashes_only = FaultPlan.sample(7, rounds=5, shards=2, events=5,
                                    kinds=("crash",))
    assert all(event.kind == "crash" for event in crashes_only.events)


# ---------------------------------------------------------------------------
# FaultInjector consumption semantics
# ---------------------------------------------------------------------------


def test_crash_and_slow_fire_exactly_once():
    plan = FaultPlan(
        events=(
            FaultEvent(kind="crash", round=4, segment=1, phase="begin"),
            FaultEvent(kind="slow", round=4, segment=1, phase="begin",
                       delay=0.5),
        )
    )
    injector = FaultInjector(plan)
    assert injector.pending() == 2
    directive = injector.directives_for(4, 1, "begin")
    assert directive == {"crash": True, "delay": 0.5}
    # A recovered run replaying the same superstep must not re-fire.
    assert injector.directives_for(4, 1, "begin") is None
    assert injector.pending() == 0


def test_directives_ignore_non_matching_coordinates():
    injector = FaultInjector(
        FaultPlan(events=(FaultEvent(kind="crash", round=2, segment=0),))
    )
    assert injector.directives_for(2, 1, "begin") is None
    assert injector.directives_for(3, 0, "begin") is None
    assert injector.directives_for(2, 0, "select") is None
    assert injector.pending() == 1


def test_drop_tokens_burn_one_per_failed_send():
    injector = FaultInjector(
        FaultPlan(events=(
            FaultEvent(kind="drop", round=6, segment=2, phase="select",
                       count=2),
        ))
    )
    assert injector.drop_next_send(6, 2, "select") is True
    assert injector.drop_next_send(6, 2, "select") is True
    assert injector.drop_next_send(6, 2, "select") is False
    assert injector.pending() == 0
    # Drops never surface through the crash/slow channel.
    fresh = FaultInjector(
        FaultPlan(events=(FaultEvent(kind="drop", round=1, segment=0),))
    )
    assert fresh.directives_for(1, 0, "begin") is None
    assert fresh.pending() == 1
