"""Property-based tests for badness accounting and the Lemma 3.4 step.

These tests build random line configurations directly (bypassing the
simulator) and check:

* the badness helpers agree with a brute-force recomputation from the raw
  pseudo-buffer loads,
* one step of PPTS-style interval forwarding never increases badness and
  strictly decreases it at every buffer inside the forwarded interval —
  exactly the statement of Lemma 3.4.
"""

from __future__ import annotations

import random as random_module

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.badness import (
    line_badness_by_destination,
    line_total_badness,
    pseudo_buffer_badness,
)
from repro.core.packet import Packet, make_injection
from repro.core.pseudobuffer import NodeBuffer


def _random_configuration(num_nodes, destinations, loads_seed):
    """Random per-(node, destination) loads, returned as NodeBuffers plus a load map."""
    rng = random_module.Random(loads_seed)
    buffers = {i: NodeBuffer(i) for i in range(num_nodes)}
    loads = {}
    for i in range(num_nodes):
        for w in destinations:
            if w <= i:
                continue
            load = rng.choice([0, 0, 0, 1, 1, 2, 3])
            loads[(i, w)] = load
            for _ in range(load):
                packet = Packet.from_injection(make_injection(0, i, w))
                packet.location = i
                buffers[i].store(packet, w)
    return buffers, loads


def _brute_force_badness(loads, num_nodes, destinations):
    """B(i) computed directly from the load map."""
    result = {}
    for i in range(num_nodes):
        total = 0
        for w in destinations:
            if w <= i:
                continue
            for j in range(0, i + 1):
                total += max(loads.get((j, w), 0) - 1, 0)
        result[i] = total
    return result


class TestBadnessAgreesWithBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        num_nodes=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    def test_total_badness(self, num_nodes, seed, data):
        num_destinations = data.draw(
            st.integers(min_value=1, max_value=max(1, num_nodes - 1))
        )
        destinations = sorted(
            random_module.Random(seed).sample(
                range(1, num_nodes), min(num_destinations, num_nodes - 1)
            )
        )
        buffers, loads = _random_configuration(num_nodes, destinations, seed + 7)
        computed = line_total_badness(buffers, destinations)
        expected = _brute_force_badness(loads, num_nodes, destinations)
        assert computed == expected

    @settings(max_examples=40, deadline=None)
    @given(
        num_nodes=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_per_destination_badness_sums_to_total(self, num_nodes, seed):
        destinations = sorted(
            random_module.Random(seed).sample(
                range(1, num_nodes), min(3, num_nodes - 1)
            )
        )
        buffers, _ = _random_configuration(num_nodes, destinations, seed + 3)
        per = line_badness_by_destination(buffers, destinations)
        total = line_total_badness(buffers, destinations)
        for i in range(num_nodes):
            assert total[i] == sum(per[(i, w)] for w in destinations if w > i)


class TestLemma34SingleStep:
    @settings(max_examples=60, deadline=None)
    @given(
        num_nodes=st.integers(min_value=3, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_forwarding_an_interval_decreases_badness(self, num_nodes, seed):
        """Forward one packet from every non-empty k-pseudo-buffer in an
        interval [a, b] with L_k(a) >= 2 and b < w_k: the k-badness of every
        buffer in [a, b] strictly decreases, and no buffer's badness grows
        except possibly b + 1 (which Lemma 3.4 excludes by requiring b < w_k
        and accounting the arrival there)."""
        rng = random_module.Random(seed)
        destination = num_nodes  # a single destination past the right end
        destinations = [destination]
        buffers, loads = _random_configuration(num_nodes + 1, destinations, seed + 11)
        # Find a buffer with load >= 2 to play the role of a_k.
        bad_candidates = [
            i for i in range(num_nodes) if buffers[i].load_of(destination) >= 2
        ]
        if not bad_candidates:
            return  # nothing to forward; the property is vacuous here
        a = rng.choice(bad_candidates)
        b = rng.randint(a, num_nodes - 1)

        before = line_badness_by_destination(buffers, destinations)

        # Simultaneously forward one packet from every non-empty pseudo-buffer
        # in [a, b]: pop first, then place at the successor.
        moved = []
        for i in range(a, b + 1):
            if buffers[i].load_of(destination) > 0:
                moved.append((i, buffers[i].pop_from(destination)))
        for i, packet in moved:
            if i + 1 < destination:
                packet.location = i + 1
                buffers[i + 1].store(packet, destination)

        after = line_badness_by_destination(buffers, destinations)

        for i in range(num_nodes):
            if a <= i <= b:
                expected_cap = max(before[(i, destination)] - 1, 0)
                assert after[(i, destination)] <= expected_cap
            elif i < a:
                assert after[(i, destination)] == before[(i, destination)]
            elif i > b:
                # Buffers right of the interval can gain at most the one
                # packet that arrived at b + 1.
                assert after[(i, destination)] <= before[(i, destination)] + 1


class TestPseudoBufferBadnessProperties:
    @settings(max_examples=50, deadline=None)
    @given(load=st.integers(min_value=0, max_value=50))
    def test_matches_definition(self, load):
        assert pseudo_buffer_badness(load) == max(load - 1, 0)

    @settings(max_examples=50, deadline=None)
    @given(load=st.integers(min_value=0, max_value=50))
    def test_monotone_and_lipschitz(self, load):
        assert pseudo_buffer_badness(load + 1) >= pseudo_buffer_badness(load)
        assert pseudo_buffer_badness(load + 1) - pseudo_buffer_badness(load) <= 1
