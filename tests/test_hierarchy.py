"""Unit and property tests for the hierarchical partition (Section 4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import (
    HierarchicalPartition,
    base_m_digits,
    digits_to_index,
    factor_as_power,
    is_perfect_power,
)
from repro.network.errors import ConfigurationError


class TestDigits:
    def test_base_2(self):
        assert base_m_digits(13, 2, 4) == [1, 0, 1, 1]

    def test_base_3(self):
        assert base_m_digits(14, 3, 3) == [2, 1, 1]

    def test_roundtrip(self):
        for value in range(81):
            digits = base_m_digits(value, 3, 4)
            assert digits_to_index(digits, 3) == value

    def test_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            base_m_digits(16, 2, 4)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            base_m_digits(-1, 2, 3)
        with pytest.raises(ConfigurationError):
            base_m_digits(3, 1, 3)

    def test_perfect_power_helpers(self):
        assert is_perfect_power(16, 2, 4)
        assert not is_perfect_power(12, 2, 4)
        assert factor_as_power(27, 3) == 3
        assert factor_as_power(64, 3) == 4
        assert factor_as_power(10, 3) is None


class TestConstruction:
    def test_derives_branching(self):
        partition = HierarchicalPartition(16, 4)
        assert partition.branching == 2

    def test_explicit_branching_checked(self):
        with pytest.raises(ConfigurationError):
            HierarchicalPartition(16, 4, branching=3)

    def test_non_power_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchicalPartition(12, 2)

    def test_single_level(self):
        partition = HierarchicalPartition(10, 1, branching=10)
        assert partition.level_partition(0) == [(0, 9)]


class TestIntervals:
    def test_figure1_partition_structure(self):
        """The n=16, m=2, ell=4 partition of Figure 1."""
        partition = HierarchicalPartition(16, 4)
        assert partition.level_partition(3) == [(0, 15)]
        assert partition.level_partition(2) == [(0, 7), (8, 15)]
        assert partition.level_partition(1) == [(0, 3), (4, 7), (8, 11), (12, 15)]
        assert partition.level_partition(0) == [
            (0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11), (12, 13), (14, 15),
        ]

    def test_level_partitions_cover_the_line(self):
        partition = HierarchicalPartition(27, 3)
        for level in range(3):
            covered = []
            for start, end in partition.level_partition(level):
                covered.extend(range(start, end + 1))
            assert covered == list(range(27))

    def test_interval_containing(self):
        partition = HierarchicalPartition(16, 4)
        assert partition.interval_containing(2, 13) == (8, 15)
        assert partition.interval_containing(0, 13) == (12, 13)

    def test_nesting_each_interval_splits_into_m_children(self):
        partition = HierarchicalPartition(27, 3)
        for level in range(1, 3):
            for start, end in partition.level_partition(level):
                children = [
                    (s, e)
                    for s, e in partition.level_partition(level - 1)
                    if start <= s and e <= end
                ]
                assert len(children) == 3

    def test_subinterval_endpoints(self):
        partition = HierarchicalPartition(16, 4)
        assert partition.subinterval_endpoints(2, 13) == [8, 12]
        assert partition.subinterval_endpoints(1, 13) == [12, 14]
        assert partition.subinterval_endpoints(0, 13) == [12, 13]

    def test_out_of_range_queries(self):
        partition = HierarchicalPartition(16, 4)
        with pytest.raises(ConfigurationError):
            partition.interval(4, 0)
        with pytest.raises(ConfigurationError):
            partition.interval(0, 8)
        with pytest.raises(ConfigurationError):
            partition.interval_containing(0, 16)


class TestSegments:
    def test_segment_level_is_highest_differing_digit(self):
        partition = HierarchicalPartition(16, 4)
        # 0010 vs 1100 differ first at position 3.
        assert partition.segment_level(2, 12) == 3
        # 1000 vs 1100 differ first at position 2.
        assert partition.segment_level(8, 12) == 2
        # 1100 vs 1101 differ at position 0.
        assert partition.segment_level(12, 13) == 0

    def test_intermediate_destination_definition(self):
        partition = HierarchicalPartition(16, 4)
        # x(i, w) = floor(w / m^j) * m^j with j = lv(i, w).
        assert partition.intermediate_destination(2, 13) == 8
        assert partition.intermediate_destination(8, 13) == 12
        assert partition.intermediate_destination(12, 13) == 13

    def test_virtual_sink_destination(self):
        partition = HierarchicalPartition(16, 4)
        assert partition.segment_level(3, 16) == 3
        assert partition.intermediate_destination(3, 16) == 16

    def test_trajectory_levels_strictly_decrease(self):
        partition = HierarchicalPartition(16, 4)
        segments = partition.virtual_trajectory(2, 13)
        levels = [segment.level for segment in segments]
        assert levels == sorted(levels, reverse=True)
        assert len(set(levels)) == len(levels)

    def test_trajectory_is_contiguous_and_ends_at_destination(self):
        partition = HierarchicalPartition(81, 4, branching=3)
        segments = partition.virtual_trajectory(5, 77)
        assert segments[0].start == 5
        assert segments[-1].end == 77
        for previous, current in zip(segments, segments[1:]):
            assert current.start == previous.end

    def test_pseudo_buffer_key(self):
        partition = HierarchicalPartition(16, 4)
        assert partition.pseudo_buffer_key(2, 13) == (3, 8)
        assert partition.pseudo_buffer_key(8, 13) == (2, 12)

    def test_invalid_segment_queries(self):
        partition = HierarchicalPartition(16, 4)
        with pytest.raises(ConfigurationError):
            partition.segment_level(5, 5)
        with pytest.raises(ConfigurationError):
            partition.segment_level(5, 3)
        with pytest.raises(ConfigurationError):
            partition.virtual_trajectory(5, 5)


class TestFigureRows:
    def test_row_count(self):
        partition = HierarchicalPartition(16, 4)
        # 1 + 2 + 4 + 8 intervals across the four levels.
        assert len(partition.figure_rows()) == 15

    def test_rows_describe_intervals(self):
        partition = HierarchicalPartition(9, 2, branching=3)
        rows = partition.figure_rows()
        top = [row for row in rows if row["level"] == 1]
        assert len(top) == 1
        assert top[0]["start"] == 0 and top[0]["end"] == 8


class TestPropertyBased:
    @settings(max_examples=150, deadline=None)
    @given(
        data=st.data(),
        branching=st.integers(min_value=2, max_value=4),
        levels=st.integers(min_value=1, max_value=4),
    )
    def test_trajectory_properties_hold_for_random_routes(self, data, branching, levels):
        partition = HierarchicalPartition(branching**levels, levels, branching)
        n = partition.num_nodes
        source = data.draw(st.integers(min_value=0, max_value=n - 2))
        destination = data.draw(st.integers(min_value=source + 1, max_value=n - 1))
        segments = partition.virtual_trajectory(source, destination)
        # Contiguity, termination, monotone decreasing levels.
        assert segments[0].start == source
        assert segments[-1].end == destination
        levels_seen = [segment.level for segment in segments]
        assert levels_seen == sorted(levels_seen, reverse=True)
        for previous, current in zip(segments, segments[1:]):
            assert current.start == previous.end
        # Each intermediate endpoint (except possibly the final destination)
        # is the left endpoint of an interval at the segment's level.
        for segment in segments[:-1]:
            assert segment.end % (branching**segment.level) == 0

    @settings(max_examples=100, deadline=None)
    @given(
        branching=st.integers(min_value=2, max_value=4),
        levels=st.integers(min_value=1, max_value=4),
        index=st.integers(min_value=0),
    )
    def test_every_buffer_lies_in_exactly_one_interval_per_level(
        self, branching, levels, index
    ):
        partition = HierarchicalPartition(branching**levels, levels, branching)
        buffer = index % partition.num_nodes
        for level in range(levels):
            containing = [
                (start, end)
                for start, end in partition.level_partition(level)
                if start <= buffer <= end
            ]
            assert len(containing) == 1
            assert containing[0] == partition.interval_containing(level, buffer)
