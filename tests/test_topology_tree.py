"""Unit tests for directed in-trees (repro.network.topology.TreeTopology)."""

from __future__ import annotations

import pytest

from repro.network.errors import TopologyError
from repro.network.topology import (
    TreeTopology,
    binary_tree,
    caterpillar_tree,
    random_tree,
    star_tree,
)


class TestConstruction:
    def test_simple_tree(self):
        tree = TreeTopology({0: None, 1: 0, 2: 0, 3: 1})
        assert tree.root == 0
        assert sorted(tree.nodes) == [0, 1, 2, 3]
        assert set(tree.edges) == {(1, 0), (2, 0), (3, 1)}

    def test_root_can_be_implicit(self):
        tree = TreeTopology({1: 0, 2: 1})
        assert tree.root == 0

    def test_two_roots_rejected(self):
        with pytest.raises(TopologyError):
            TreeTopology({1: 0, 3: 2})

    def test_cycle_rejected(self):
        with pytest.raises(TopologyError):
            TreeTopology({0: None, 1: 2, 2: 1})

    def test_from_networkx_roundtrip(self):
        original = caterpillar_tree(3, 1)
        rebuilt = TreeTopology.from_networkx(original.to_networkx())
        assert set(rebuilt.edges) == set(original.edges)
        assert rebuilt.root == original.root


class TestStructureQueries:
    def test_parent_children_depth(self):
        tree = TreeTopology({0: None, 1: 0, 2: 0, 3: 1, 4: 1})
        assert tree.parent(3) == 1
        assert tree.parent(0) is None
        assert sorted(tree.children(1)) == [3, 4]
        assert tree.depth(0) == 0
        assert tree.depth(4) == 2
        assert tree.height == 2

    def test_leaves(self):
        tree = TreeTopology({0: None, 1: 0, 2: 0, 3: 1})
        assert sorted(tree.leaves()) == [2, 3]

    def test_is_upstream_partial_order(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1, 3: 1})
        assert tree.is_upstream(2, 0)
        assert tree.is_upstream(2, 1)
        assert tree.is_upstream(2, 2)
        assert not tree.is_upstream(1, 2)
        assert not tree.is_upstream(2, 3)

    def test_subtree(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1, 3: 1, 4: 0})
        assert tree.subtree(1) == [1, 2, 3]
        assert tree.subtree(0) == [0, 1, 2, 3, 4]

    def test_next_hop_is_parent(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1})
        assert tree.next_hop(2) == 1
        assert tree.next_hop(0) is None


class TestRouting:
    def test_path_toward_root(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1, 3: 2})
        assert tree.path(3, 0) == [3, 2, 1, 0]
        assert tree.path(3, 1) == [3, 2, 1]

    def test_invalid_routes_rejected(self):
        tree = TreeTopology({0: None, 1: 0, 2: 0})
        with pytest.raises(TopologyError):
            tree.path(1, 2)  # siblings: no directed path
        with pytest.raises(TopologyError):
            tree.path(0, 1)  # downward: against edge orientation
        with pytest.raises(TopologyError):
            tree.validate_route(1, 1)

    def test_path_contains_excludes_destination(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1, 3: 2})
        assert tree.path_contains(3, 0, 3)
        assert tree.path_contains(3, 0, 1)
        assert not tree.path_contains(3, 0, 0)
        assert not tree.path_contains(2, 1, 3)


class TestDestinationDepth:
    def test_single_destination_root(self):
        tree = caterpillar_tree(4, 1)
        assert tree.destination_depth([tree.root]) == 1

    def test_spine_destinations_on_caterpillar(self):
        tree = caterpillar_tree(5, 1)
        spine = [v for v in tree.nodes if tree.children(v)]
        depth = tree.destination_depth(spine)
        assert depth == len(spine)

    def test_star_depth_is_at_most_two(self):
        tree = star_tree(5)
        destinations = [tree.root, 1, 2]
        assert tree.destination_depth(destinations) == 2

    def test_unknown_destination_rejected(self):
        tree = star_tree(3)
        with pytest.raises(TopologyError):
            tree.destination_depth([99])


class TestGenerators:
    def test_random_tree_is_connected_and_rooted_at_zero(self):
        tree = random_tree(40, seed=7)
        assert tree.root == 0
        assert len(tree.nodes) == 40
        for node in tree.nodes:
            assert tree.is_upstream(node, 0)

    def test_random_tree_deterministic_for_seed(self):
        assert random_tree(25, seed=3).edges == random_tree(25, seed=3).edges

    def test_caterpillar_shape(self):
        tree = caterpillar_tree(spine_length=4, legs_per_node=2)
        assert len(tree.nodes) == 4 + 4 * 2
        assert tree.height == 4  # deepest leg hangs off the deepest spine node

    def test_star_shape(self):
        tree = star_tree(9)
        assert len(tree.leaves()) == 9
        assert tree.height == 1

    def test_binary_tree_shape(self):
        tree = binary_tree(3)
        assert len(tree.nodes) == 15
        assert tree.height == 3
        assert len(tree.leaves()) == 8

    def test_generator_validation(self):
        with pytest.raises(TopologyError):
            random_tree(0)
        with pytest.raises(TopologyError):
            caterpillar_tree(0)
        with pytest.raises(TopologyError):
            star_tree(0)
        with pytest.raises(TopologyError):
            binary_tree(-1)
