"""End-to-end equivalence of the delta-driven engine with the seed engine.

The acceptance bar for the incremental engine is *bit-identical*
:class:`SimulationResult` values on seeded runs:

* the delta-fed :class:`OccupancyTimeline` (hot path) against the
  full-snapshot path (used when history recording is on),
* the incremental ``select_activations`` of PTS / PPTS / HPTS and the tree
  algorithms against the seed engine's linear scans,
* latency / delivery statistics folded in at delivery time against the
  per-packet recomputation.
"""

from __future__ import annotations

import pytest

from repro.api.session import Session
from repro.api.specs import ScenarioSpec


def _spec(payload):
    return ScenarioSpec.from_dict(payload)


LINE_SCENARIOS = [
    _spec(
        {
            "name": "equiv/pts",
            "topology": {"kind": "line", "params": {"num_nodes": 48}},
            "algorithm": {"name": "pts", "params": {}},
            "adversary": {"name": "single", "rho": 1.0, "sigma": 3.0,
                          "rounds": 220, "params": {}},
            "policy": {"seed": 11},
        }
    ),
    _spec(
        {
            "name": "equiv/ppts",
            "topology": {"kind": "line", "params": {"num_nodes": 48}},
            "algorithm": {"name": "ppts", "params": {}},
            "adversary": {"name": "bounded", "rho": 0.9, "sigma": 3.0,
                          "rounds": 220, "params": {"num_destinations": 6}},
            "policy": {"seed": 11},
        }
    ),
    _spec(
        {
            "name": "equiv/hpts",
            "topology": {"kind": "line", "params": {"num_nodes": 64}},
            "algorithm": {"name": "hpts", "params": {"levels": 2}},
            "adversary": {"name": "bounded", "rho": 0.5, "sigma": 3.0,
                          "rounds": 220, "params": {"num_destinations": 6}},
            "policy": {"seed": 11},
        }
    ),
    _spec(
        {
            "name": "equiv/greedy",
            "topology": {"kind": "line", "params": {"num_nodes": 48}},
            "algorithm": {"name": "greedy", "params": {}},
            "adversary": {"name": "bounded", "rho": 0.9, "sigma": 3.0,
                          "rounds": 220, "params": {"num_destinations": 6}},
            "policy": {"seed": 11},
        }
    ),
    _spec(
        {
            "name": "equiv/tree-ppts",
            "topology": {"kind": "tree", "params": {"family": "random",
                                                    "num_nodes": 40, "seed": 5}},
            "algorithm": {"name": "tree-ppts", "params": {}},
            "adversary": {"name": "convergecast", "rho": 0.9, "sigma": 3.0,
                          "rounds": 180, "params": {}},
            "policy": {"seed": 11},
        }
    ),
]


def _result_fingerprint(result):
    return (
        result.max_occupancy,
        result.max_occupancy_per_node,
        result.max_staged,
        result.rounds_executed,
        result.packets_injected,
        result.packets_delivered,
        result.packets_undelivered,
        result.max_latency,
        result.mean_latency,
        result.drained,
    )


def _with_policy(spec, **overrides):
    policy = dict(
        rounds=spec.policy.rounds,
        drain=spec.policy.drain,
        max_drain_rounds=spec.policy.max_drain_rounds,
        record_history=spec.policy.record_history,
        record_occupancy_vectors=spec.policy.record_occupancy_vectors,
        validate_capacity=spec.policy.validate_capacity,
        seed=spec.policy.seed,
    )
    policy.update(overrides)
    return _spec({**spec.to_dict(), "policy": policy})


@pytest.mark.parametrize("spec", LINE_SCENARIOS, ids=lambda s: s.label)
def test_delta_timeline_matches_full_snapshot_path(spec):
    """History mode uses full snapshots; the hot path uses deltas.  Same result."""
    session = Session()
    delta_report = session.run(spec)
    snapshot_report = session.run(_with_policy(spec, record_history=True))
    assert _result_fingerprint(delta_report.result) == _result_fingerprint(
        snapshot_report.result
    )
    # The per-round history must agree with the timeline it produced.
    history_max = max(
        (record.max_occupancy for record in snapshot_report.result.history), default=0
    )
    assert history_max == delta_report.result.max_occupancy


@pytest.mark.parametrize("spec", LINE_SCENARIOS, ids=lambda s: s.label)
def test_incremental_engine_matches_seed_scan_engine(spec):
    """Flip the algorithms back to the seed scan path; results must be identical."""
    session = Session()
    incremental = session.run(spec)

    scan_session = Session()
    with_scan = scan_session.prepare(spec)  # outside a scope: ids still scoped below
    algorithm_type = type(with_scan.algorithm)
    assert getattr(algorithm_type, "use_incremental_selection", None) is True
    try:
        algorithm_type.use_incremental_selection = False
        scan = scan_session.run(spec)
    finally:
        algorithm_type.use_incremental_selection = True

    assert _result_fingerprint(incremental.result) == _result_fingerprint(scan.result)
    assert incremental.within_bound == scan.within_bound


def test_latency_statistics_match_per_packet_recount():
    spec = LINE_SCENARIOS[1]
    from repro.core.packet import packet_id_scope
    from repro.network.simulator import Simulator

    session = Session()
    with packet_id_scope():
        prepared = session.prepare(spec)
        simulator = Simulator(prepared.topology, prepared.algorithm, prepared.adversary)
        result = simulator.run()
    latencies = [
        packet.latency
        for packet in simulator.packets.values()
        if packet.latency is not None
    ]
    assert result.packets_delivered == len(latencies)
    assert result.max_latency == (max(latencies) if latencies else None)
    assert result.mean_latency == (
        sum(latencies) / len(latencies) if latencies else None
    )
    assert result.packets_undelivered == len(simulator.packets) - len(latencies)


def test_empty_run_produces_seed_shaped_result():
    """Zero rounds, zero packets: the delta path must not invent node entries."""
    spec = _with_policy(LINE_SCENARIOS[0], rounds=0, drain=False)
    result = Session().run(spec).result
    assert result.max_occupancy == 0
    assert result.rounds_executed == 0
    assert result.max_latency is None
    assert result.mean_latency is None
