"""Integration sweeps: every algorithm against every relevant bound.

These are the end-to-end versions of the E1-E4 benchmarks, shrunk to sizes
suitable for the unit-test suite.  They run the whole stack — workload
builders, simulator, algorithms, bound checking — and assert that every upper
bound from the paper holds on every (workload, algorithm) pair it applies to.
"""

from __future__ import annotations

import pytest

from repro.core.hpts import HierarchicalPeakToSink
from repro.core.ppts import ParallelPeakToSink
from repro.core.pts import PeakToSink
from repro.core.tree import TreeParallelPeakToSink, TreePeakToSink
from repro.experiments.harness import run_workload, sweep
from repro.experiments.workloads import (
    hierarchical_workload,
    multi_destination_workload,
    single_destination_workload,
    tree_workload,
)
from repro.network.topology import binary_tree, caterpillar_tree, star_tree


class TestProposition31Sweep:
    @pytest.mark.parametrize("n", [16, 64])
    @pytest.mark.parametrize("rho", [0.5, 1.0])
    @pytest.mark.parametrize("sigma", [0, 4])
    def test_pts_bound_over_grid(self, n, rho, sigma):
        for kind in ("stress", "random"):
            workload = single_destination_workload(
                n, rho, sigma, num_rounds=80, kind=kind, seed=n + sigma
            )
            row = run_workload(workload, lambda w: PeakToSink(w.topology))
            assert row.within_bound, row.as_dict()


class TestProposition32Sweep:
    @pytest.mark.parametrize("d", [1, 4, 16])
    @pytest.mark.parametrize("kind", ["round_robin", "nested", "random"])
    def test_ppts_bound_over_grid(self, d, kind):
        workload = multi_destination_workload(
            48, d, rho=1.0, sigma=2, num_rounds=120, kind=kind, seed=d
        )
        row = run_workload(workload, lambda w: ParallelPeakToSink(w.topology))
        assert row.within_bound, row.as_dict()

    def test_ppts_and_pts_agree_on_single_destination(self):
        workload = single_destination_workload(32, 1.0, 2, 100, kind="stress")
        pts_row = run_workload(workload, lambda w: PeakToSink(w.topology))
        ppts_row = run_workload(workload, lambda w: ParallelPeakToSink(w.topology))
        # PPTS restricted to one destination is exactly PTS, so the measured
        # occupancies coincide.
        assert pts_row.max_occupancy == ppts_row.max_occupancy


class TestProposition35Sweep:
    @pytest.mark.parametrize(
        "tree_builder",
        [
            lambda: caterpillar_tree(5, 2),
            lambda: star_tree(8),
            lambda: binary_tree(3),
        ],
    )
    def test_tree_algorithms_over_topologies(self, tree_builder):
        tree = tree_builder()
        root_only = tree_workload(tree, 1.0, 2, 80, destinations=[tree.root])
        row = run_workload(root_only, lambda w: TreePeakToSink(w.topology))
        assert row.within_bound, row.as_dict()

        internal = [v for v in tree.nodes if tree.children(v)][:3] or [tree.root]
        multi = tree_workload(tree, 1.0, 2, 80, destinations=internal)
        row = run_workload(
            multi,
            lambda w: TreeParallelPeakToSink(
                w.topology, destinations=w.params["destinations"]
            ),
        )
        assert row.within_bound, row.as_dict()


class TestTheorem41Sweep:
    @pytest.mark.parametrize("branching,levels", [(4, 2), (2, 4), (3, 3)])
    def test_hpts_bound_over_grid(self, branching, levels):
        rho = 1.0 / levels
        workload = hierarchical_workload(
            branching, levels, rho, sigma=2, num_rounds=50 * levels
        )
        row = run_workload(
            workload,
            lambda w: HierarchicalPeakToSink(
                w.topology, levels, branching, rho=rho
            ),
        )
        assert row.within_bound, row.as_dict()

    def test_bound_shape_hpts_vs_ppts_crossover(self):
        """For many destinations at low rate the HPTS *bound* beats the PPTS
        bound, and both algorithms respect their own bounds — the crossover
        the abstract describes."""
        branching, levels = 4, 3
        rho = 1.0 / levels
        workload = hierarchical_workload(
            branching, levels, rho, sigma=1, num_rounds=180, kind="random", seed=1
        )
        rows = sweep(
            [workload],
            {
                "hpts": lambda w: HierarchicalPeakToSink(
                    w.topology, levels, branching, rho=rho
                ),
                "ppts": lambda w: ParallelPeakToSink(w.topology),
            },
        )
        by_name = {row.algorithm: row for row in rows}
        assert by_name["HPTS"].within_bound
        assert by_name["PPTS"].within_bound
        # The HPTS guarantee is what scales: ell * n^(1/ell) + sigma + 1 stays
        # far below 1 + d + sigma once d is large.
        d = by_name["PPTS"].params.get("n") - 1
        assert by_name["HPTS"].bound < 1 + d + 1
