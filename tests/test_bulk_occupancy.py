"""Numpy-backed bulk occupancy snapshots (``record_occupancy_vectors`` runs).

``OccupancyTimeline`` grows a dense maxima vector fed by
``observe_bulk`` (numpy ``maximum`` when available, a pure-python
``array('q')`` loop otherwise), and ``ForwardingAlgorithm`` maintains a dense
occupancy mirror so the per-round fold is vectorized.  The contract is
bit-identical results: the dense paths must report exactly the maxima the
sparse dict paths report.
"""

from __future__ import annotations

import builtins
import random

import pytest

from repro.api import Scenario, Session
from repro.core.pts import PeakToSink
from repro.network.errors import ConfigurationError
from repro.network.events import OccupancyTimeline
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology, TreeTopology


def _random_snapshots(num_nodes: int, rounds: int, seed: int):
    rng = random.Random(seed)
    for _ in range(rounds):
        yield (
            {node: rng.randrange(0, 6) for node in range(num_nodes)},
            rng.randrange(0, 4),
        )


def test_dense_and_sparse_timelines_agree_on_random_feeds():
    sparse = OccupancyTimeline()
    dense = OccupancyTimeline(dense_size=24)
    for snapshot, staged in _random_snapshots(24, 200, seed=11):
        sparse.observe(snapshot, staged)
        dense.observe(snapshot, staged)
    assert dense.max_occupancy == sparse.max_occupancy
    assert dense.max_staged == sparse.max_staged
    assert dense.per_node_maxima() == sparse.per_node_maxima()


def test_observe_bulk_matches_observe_with_numpy():
    numpy = pytest.importorskip("numpy")
    sparse = OccupancyTimeline()
    dense = OccupancyTimeline(dense_size=24)
    for snapshot, staged in _random_snapshots(24, 200, seed=13):
        sparse.observe(snapshot, staged)
        loads = numpy.zeros(24, dtype=numpy.int64)
        for node, load in snapshot.items():
            loads[node] = load
        dense.observe_bulk(loads, staged)
    assert dense.max_occupancy == sparse.max_occupancy
    assert dense.per_node_maxima() == sparse.per_node_maxima()


def test_observe_bulk_requires_dense_mode():
    with pytest.raises(ValueError):
        OccupancyTimeline().observe_bulk([0, 1, 2])


def test_pure_python_fallback_without_numpy(monkeypatch):
    """Timeline and algorithm mirror degrade to array('q') when numpy is
    absent — results identical to the numpy path."""
    real_import = builtins.__import__

    def no_numpy(name, *args, **kwargs):
        if name == "numpy":
            raise ImportError("numpy disabled for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_numpy)
    dense = OccupancyTimeline(dense_size=24)
    assert dense._numpy is None
    sparse = OccupancyTimeline()
    from array import array

    for snapshot, staged in _random_snapshots(24, 100, seed=17):
        sparse.observe(snapshot, staged)
        loads = array("q", bytes(8 * 24))
        for node, load in snapshot.items():
            loads[node] = load
        dense.observe_bulk(loads, staged)
    assert dense.max_occupancy == sparse.max_occupancy
    assert dense.per_node_maxima() == sparse.per_node_maxima()

    topology = LineTopology(8)
    algorithm = PeakToSink(topology)
    algorithm.enable_dense_occupancy()
    assert type(algorithm.occupancy_array()).__name__ == "array"


def test_dense_mirror_tracks_buffer_mutations():
    topology = LineTopology(8)
    algorithm = PeakToSink(topology)
    algorithm.enable_dense_occupancy()
    from repro.core.packet import make_injection, Packet

    packets = [
        Packet.from_injection(make_injection(0, source, 7))
        for source in (2, 2, 5)
    ]
    algorithm.on_inject(0, packets)
    mirror = algorithm.occupancy_array()
    assert list(mirror) == [0, 0, 2, 0, 0, 1, 0, 0]
    assert {node: load for node, load in algorithm.occupancy_vector().items()
            if load} == {2: 2, 5: 1}


def test_dense_occupancy_requires_contiguous_nodes():
    tree = TreeTopology({0: None, 1: 0, 2: 0})
    from repro.core.tree import TreePeakToSink

    algorithm = TreePeakToSink(tree)
    with pytest.raises(ConfigurationError):
        algorithm.enable_dense_occupancy()


def test_occupancy_vector_run_results_unchanged_by_bulk_path():
    """An occupancy-vectors run (dense) must report exactly the same result
    as the same scenario observed through the sparse full-history path."""

    def build(record_vectors):
        scenario = (
            Scenario.line(24)
            .algorithm("ppts")
            .adversary("bounded", rho=0.9, sigma=3.0, rounds=40,
                       num_destinations=4)
            .policy(seed=19, record_history=True,
                    record_occupancy_vectors=record_vectors)
        )
        return scenario.build()

    with_vectors = Session().run(build(True)).result
    without_vectors = Session().run(build(False)).result
    assert with_vectors.max_occupancy == without_vectors.max_occupancy
    assert (
        with_vectors.max_occupancy_per_node
        == without_vectors.max_occupancy_per_node
    )
    assert with_vectors.max_staged == without_vectors.max_staged
    # The vector run additionally carries per-round occupancy dicts.
    assert with_vectors.history[0].occupancy is not None
    assert without_vectors.history[0].occupancy is None
    for dense_record, sparse_record in zip(
        with_vectors.history, without_vectors.history
    ):
        assert dense_record.max_occupancy == sparse_record.max_occupancy
        assert dense_record.forwarded == sparse_record.forwarded


def test_checkpoint_roundtrip_preserves_dense_timeline(tmp_path):
    """Saving and restoring an occupancy-vectors run keeps the dense maxima
    (checkpoint restore goes through load_maxima)."""
    from repro.checkpoint import load_checkpoint, restore_into
    from repro.core.packet import packet_id_scope

    spec = (
        Scenario.line(16)
        .algorithm("ppts")
        .adversary("bounded", rho=0.8, sigma=3.0, rounds=30,
                   num_destinations=3)
        .policy(seed=31, record_history=True, record_occupancy_vectors=True)
        .build()
    )
    full = Session().run(spec)
    path = str(tmp_path / "dense.ckpt")
    session = Session()
    with packet_id_scope():
        prepared = session.prepare(spec)
        simulator = Simulator(
            prepared.topology, prepared.algorithm, prepared.adversary,
            record_history=True, record_occupancy_vectors=True,
        )
        simulator.run(15, drain=False)
        simulator.save_checkpoint(path, spec=spec)
    resumed = Session().resume(path)
    assert resumed.result == full.result
