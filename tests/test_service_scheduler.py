"""Unit tests for job records and the fair-share scheduler."""

from __future__ import annotations

import pytest

from repro.service.errors import JobError, ServiceOverloadedError
from repro.service.jobs import LEGAL_TRANSITIONS, TERMINAL_STATES, JobRecord
from repro.service.scheduler import check_admission, select_next


def job(index, tenant="t", priority=0, state="queued", **kwargs):
    return JobRecord(
        job_id=f"job-{index:06d}", index=index, tenant=tenant,
        priority=priority, spec={"name": "x"}, state=state, **kwargs
    )


class TestJobRecord:
    def test_legal_lifecycle(self):
        record = job(0)
        record.advance("running")
        record.advance("queued")   # requeue after a worker failure
        record.advance("running")
        record.advance("done", result={"max_occupancy": 2})
        assert record.terminal
        assert record.result == {"max_occupancy": 2}

    @pytest.mark.parametrize("terminal", TERMINAL_STATES)
    def test_terminal_states_are_absorbing(self, terminal):
        assert LEGAL_TRANSITIONS[terminal] == ()

    def test_illegal_transition_is_typed(self):
        record = job(0)
        with pytest.raises(JobError, match="illegal transition"):
            record.advance("done")  # queued -> done skips running

    def test_unknown_state_is_typed(self):
        with pytest.raises(JobError, match="unknown job state"):
            job(0, state="paused")

    def test_dict_round_trip(self):
        record = job(3, tenant="alice", priority=2, submit_key="k")
        record.advance("running")
        clone = JobRecord.from_dict(record.to_dict())
        assert clone == record

    def test_unknown_keys_rejected(self):
        payload = job(0).to_dict()
        payload["surprise"] = 1
        with pytest.raises(JobError, match="unknown keys"):
            JobRecord.from_dict(payload)

    def test_public_view_hides_the_raw_spec(self):
        view = job(0).public_view()
        assert "spec" not in view
        assert view["spec_name"] == "x"

    def test_validation_bounds(self):
        with pytest.raises(JobError, match="priority"):
            job(0, priority=-1)
        with pytest.raises(JobError, match="max_retries"):
            job(0, max_retries=-1)
        with pytest.raises(JobError, match="checkpoint_every"):
            job(0, checkpoint_every=0)


class TestAdmission:
    def test_under_the_bound_is_fine(self):
        check_admission(3, 4)

    def test_at_the_bound_is_typed_and_actionable(self):
        with pytest.raises(ServiceOverloadedError) as excinfo:
            check_admission(4, 4)
        message = str(excinfo.value)
        assert "max_queue_depth" in message     # names the knob
        assert "submit_key" in message          # names the safe retry recipe


class TestSelectNext:
    def test_empty_is_none(self):
        assert select_next([], {}) is None

    def test_fifo_within_equal_everything(self):
        picked = select_next([job(2), job(0), job(1)], {})
        assert picked.index == 0

    def test_priority_beats_fifo(self):
        picked = select_next([job(0), job(1, priority=5)], {})
        assert picked.index == 1

    def test_fair_share_beats_priority(self):
        # Tenant "hog" already holds two leases; "new" holds none, so even a
        # high-priority hog job waits behind the newcomer.
        runnable = [job(0, tenant="hog", priority=9), job(1, tenant="new")]
        picked = select_next(runnable, {"hog": 2})
        assert picked.tenant == "new"

    def test_deterministic_given_same_table(self):
        runnable = [job(i, tenant=f"t{i % 3}", priority=i % 2) for i in range(9)]
        running = {"t0": 1}
        first = select_next(runnable, running)
        assert all(
            select_next(list(reversed(runnable)), dict(running)) is first
            for _ in range(3)
        )
