"""Integration tests for the job service server and client.

These drive a real :class:`JobService` (asyncio server in a background
thread, spawn-context worker processes) through the typed client, covering
the submit/ls/info/logs/cancel surface, admission control, idempotent
submission, typed worker failures, crash recovery and graceful drain.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.service import JobService, ServiceClient
from repro.service.errors import (
    JobNotFoundError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)


def tiny_spec(seed=0, name="tiny", rounds=30, nodes=5):
    return {
        "name": name,
        "topology": {"kind": "line", "params": {"num_nodes": nodes}},
        "adversary": {"name": "single", "rho": 0.5, "sigma": 2.0,
                      "rounds": rounds},
        "algorithm": {"name": "greedy", "params": {}},
        "policy": {"seed": seed},
    }


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("retry_backoff", 0.02)
    kwargs.setdefault("fsync", False)
    return JobService(str(tmp_path / "data"), **kwargs)


class TestLifecycle:
    def test_submit_runs_to_done_with_canonical_result(self, tmp_path):
        service = make_service(tmp_path).start()
        try:
            client = ServiceClient(service.socket_path)
            reply = client.submit(tiny_spec())
            assert reply["state"] == "queued"
            view = client.wait(reply["job"], timeout=90)
            assert view["state"] == "done"
            row = view["result"]
            assert row["scenario"] == "tiny"
            assert row["max_occupancy"] >= 1
            assert "within_bound" in row
        finally:
            service.stop()

    def test_ls_info_logs_cancel(self, tmp_path):
        service = make_service(tmp_path).start()
        try:
            client = ServiceClient(service.socket_path)
            done = client.submit(tiny_spec(seed=1))["job"]
            client.wait(done, timeout=90)
            # a job with a huge horizon stays running long enough to cancel
            slow = client.submit(tiny_spec(seed=2, rounds=2_000_000))["job"]
            rows = client.ls()
            assert [row["job"] for row in rows] == [done, slow]
            assert rows[0]["state"] == "done"

            info = client.info(done)
            assert info["state"] == "done"
            assert "spec" not in info and info["spec_name"] == "tiny"

            log_text = client.logs(done)
            assert "queued" in log_text and "done" in log_text

            cancelled = client.cancel(slow)
            assert cancelled["state"] == "cancelled"
            assert client.cancel(slow)["already_terminal"] is True

            with pytest.raises(JobNotFoundError, match="service ls"):
                client.info("job-999999")
        finally:
            service.stop()

    def test_cleanup_purges_terminal_jobs_and_files(self, tmp_path):
        service = make_service(tmp_path).start()
        try:
            client = ServiceClient(service.socket_path)
            job_id = client.submit(tiny_spec())["job"]
            client.wait(job_id, timeout=90)
            result_path = os.path.join(
                service.jobs_dir, f"{job_id}.result.json"
            )
            assert os.path.exists(result_path)
            assert client.cleanup() == [job_id]
            assert not os.path.exists(result_path)
            assert client.ls() == []
            with pytest.raises(JobNotFoundError):
                client.info(job_id)
        finally:
            service.stop()


class TestAdmission:
    def test_bounded_queue_rejects_typed(self, tmp_path):
        # A slow poll keeps everything queued; depth 2 admits two, rejects
        # the third with the actionable overload error.
        service = make_service(
            tmp_path, poll_interval=5.0, max_queue_depth=2
        ).start()
        try:
            client = ServiceClient(service.socket_path)
            client.submit(tiny_spec(seed=1))
            client.submit(tiny_spec(seed=2))
            with pytest.raises(ServiceOverloadedError, match="queue is full"):
                client.submit(tiny_spec(seed=3))
        finally:
            service.stop()

    def test_submit_key_is_idempotent(self, tmp_path):
        service = make_service(tmp_path, poll_interval=5.0).start()
        try:
            client = ServiceClient(service.socket_path)
            first = client.submit(tiny_spec(), submit_key="once")
            second = client.submit(tiny_spec(), submit_key="once")
            assert second["job"] == first["job"]
            assert second["duplicate"] is True
            assert len(client.ls()) == 1
        finally:
            service.stop()

    def test_garbage_spec_is_rejected_before_admission(self, tmp_path):
        from repro.api.specs import SpecError

        service = make_service(tmp_path).start()
        try:
            client = ServiceClient(service.socket_path)
            with pytest.raises(SpecError):
                client.submit({"name": "x", "surprise_key": 1})
            assert client.ls() == []
        finally:
            service.stop()


class TestTypedWorkerFailure:
    def test_deterministic_failure_is_not_retried(self, tmp_path):
        # An unknown algorithm passes spec *syntax* validation but fails
        # registry resolution inside the worker: a typed ReproError, exit 3,
        # failed immediately with zero retries burned.
        spec = tiny_spec()
        spec["algorithm"] = {"name": "no-such-algorithm", "params": {}}
        service = make_service(tmp_path).start()
        try:
            client = ServiceClient(service.socket_path)
            job_id = client.submit(spec)["job"]
            view = client.wait(job_id, timeout=90)
            assert view["state"] == "failed"
            assert view["attempts"] == 0
            assert "no-such-algorithm" in view["error_message"]
            assert "not retried" in client.logs(job_id)
        finally:
            service.stop()


class TestCrashRecovery:
    def test_kill_dash_nine_loses_no_jobs(self, tmp_path):
        service = make_service(tmp_path, fsync=True, max_running=2).start()
        client = ServiceClient(service.socket_path)
        ids = [
            client.submit(tiny_spec(seed=i, rounds=400), submit_key=f"k{i}")["job"]
            for i in range(4)
        ]
        # Crash abruptly: no drain, no flush beyond what's already durable.
        service.crash()
        service.join()
        assert service.crashed

        recovered = make_service(tmp_path, max_running=2).start()
        try:
            client2 = ServiceClient(recovered.socket_path)
            for job_id in ids:
                assert client2.wait(job_id, timeout=120)["state"] == "done"
            # submit_key dedup survives the crash too
            again = client2.submit(tiny_spec(seed=0, rounds=400), submit_key="k0")
            assert again["job"] == ids[0] and again["duplicate"] is True
        finally:
            recovered.stop()

    def test_results_identical_across_crash(self, tmp_path):
        service = make_service(tmp_path / "a", fsync=True).start()
        client = ServiceClient(service.socket_path)
        job_id = client.submit(tiny_spec(seed=5))["job"]
        service.crash()
        service.join()
        recovered = make_service(tmp_path / "a").start()
        twin_service = make_service(tmp_path / "b").start()
        try:
            crashed_row = ServiceClient(recovered.socket_path).wait(
                job_id, timeout=120
            )["result"]
            twin_client = ServiceClient(twin_service.socket_path)
            twin_id = twin_client.submit(tiny_spec(seed=5))["job"]
            twin_row = twin_client.wait(twin_id, timeout=120)["result"]
            assert crashed_row == twin_row
        finally:
            recovered.stop()
            twin_service.stop()


class TestDrain:
    def test_drain_requeues_running_jobs_for_the_next_serve(self, tmp_path):
        service = make_service(tmp_path, fsync=True).start()
        client = ServiceClient(service.socket_path)
        job_id = client.submit(tiny_spec(rounds=2_000_000))["job"]
        # wait until the job actually holds a lease
        for _ in range(500):
            if client.info(job_id)["state"] == "running":
                break
            time.sleep(0.02)
        else:  # pragma: no cover - diagnostic
            pytest.fail("job never started running")
        service.stop()  # graceful drain

        # After the drain the socket is gone and submissions say so, typed.
        with pytest.raises(ServiceUnavailableError, match="serve"):
            client.submit(tiny_spec(seed=9))

        resumed = make_service(tmp_path).start()
        try:
            view = ServiceClient(resumed.socket_path).info(job_id)
            # Requeued with its budget intact (drain is not a failure).
            assert view["state"] in ("queued", "running")
            assert view["attempts"] == 0
            log_text = ServiceClient(resumed.socket_path).logs(job_id)
            assert "drained" in log_text
        finally:
            resumed.stop()

    def test_draining_service_refuses_new_work(self, tmp_path):
        service = make_service(tmp_path).start()
        client = ServiceClient(service.socket_path)
        client.drain()
        service.join(timeout=30)
        assert not service.is_alive()
