"""Unit tests for the simulation engine (repro.network.simulator)."""

from __future__ import annotations

from typing import Hashable, List

import pytest

from repro.adversary.base import InjectionPattern
from repro.core.packet import Packet
from repro.core.scheduler import Activation, ForwardingAlgorithm
from repro.core.pts import PeakToSink
from repro.network.errors import CapacityViolationError, SchedulingError, TopologyError
from repro.network.simulator import Simulator, run_simulation
from repro.network.topology import LineTopology


class ForwardEverything(ForwardingAlgorithm):
    """A simple work-conserving single-queue algorithm used to test the engine."""

    name = "ForwardEverything"

    def classify(self, packet: Packet, node: int) -> Hashable:
        return "q"

    def select_activations(self, round_number: int) -> List[Activation]:
        return [
            Activation(node=node, key="q")
            for node, buffer in self.buffers.items()
            if buffer.load > 0
        ]


class DoubleActivation(ForwardEverything):
    """Deliberately violates capacity by activating a node twice."""

    name = "DoubleActivation"

    def select_activations(self, round_number: int) -> List[Activation]:
        activations = super().select_activations(round_number)
        return activations + activations


class UnknownNodeActivation(ForwardEverything):
    name = "UnknownNodeActivation"

    def select_activations(self, round_number: int) -> List[Activation]:
        return [Activation(node=999, key="q")]


class TestBasicExecution:
    def test_single_packet_travels_one_hop_per_round(self):
        line = LineTopology(6)
        pattern = InjectionPattern.from_tuples([(0, 0, 5)])
        result = run_simulation(line, ForwardEverything(line), pattern)
        assert result.packets_injected == 1
        assert result.packets_delivered == 1
        # The packet covers 5 hops, one per round, starting in its injection
        # round: delivered in round 4, i.e. latency 4.
        assert result.max_latency == 4
        assert result.drained

    def test_max_occupancy_measured_after_injection(self):
        line = LineTopology(4)
        # Three packets injected at node 0 in round 0: L^0(0) = 3 even though
        # one of them leaves during the forwarding step.
        pattern = InjectionPattern.from_tuples([(0, 0, 3)] * 3)
        result = run_simulation(line, ForwardEverything(line), pattern)
        assert result.max_occupancy == 3

    def test_per_node_maxima(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 0, 3), (0, 1, 3), (0, 1, 3)])
        result = run_simulation(line, ForwardEverything(line), pattern)
        assert result.max_occupancy_per_node[1] == 2
        assert result.max_occupancy_per_node[0] == 1

    def test_route_validation(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 3, 1)])
        with pytest.raises(TopologyError):
            run_simulation(line, ForwardEverything(line), pattern)

    def test_latency_statistics(self):
        line = LineTopology(8)
        pattern = InjectionPattern.from_tuples([(0, 0, 7), (0, 6, 7)])
        result = run_simulation(line, ForwardEverything(line), pattern)
        # 7 hops -> delivered in round 6 (latency 6); 1 hop -> delivered in
        # its injection round (latency 0).
        assert result.max_latency == 6
        assert result.mean_latency == pytest.approx(3.0)

    def test_throughput(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(t, 2, 3) for t in range(10)])
        result = run_simulation(line, ForwardEverything(line), pattern)
        assert result.packets_delivered == 10
        assert 0 < result.throughput <= 1

    def test_num_rounds_override_without_drain(self):
        line = LineTopology(6)
        pattern = InjectionPattern.from_tuples([(0, 0, 5)])
        simulator = Simulator(line, ForwardEverything(line), pattern)
        result = simulator.run(num_rounds=2, drain=False)
        assert result.rounds_executed == 2
        assert result.packets_delivered == 0
        assert not result.drained
        assert result.packets_undelivered == 1


class TestHistoryRecording:
    def test_round_records(self):
        line = LineTopology(5)
        pattern = InjectionPattern.from_tuples([(0, 0, 4), (1, 0, 4)])
        simulator = Simulator(
            line, ForwardEverything(line), pattern, record_history=True
        )
        result = simulator.run()
        assert len(result.history) == result.rounds_executed
        assert result.history[0].injected == 1
        assert result.history[0].forwarded == 1
        assert result.occupancy_timeline()[0] == 1

    def test_occupancy_vectors_optional(self):
        line = LineTopology(5)
        pattern = InjectionPattern.from_tuples([(0, 0, 4)])
        simulator = Simulator(
            line,
            ForwardEverything(line),
            pattern,
            record_occupancy_vectors=True,
        )
        result = simulator.run()
        assert result.history[0].occupancy == {0: 1, 1: 0, 2: 0, 3: 0, 4: 0}

    def test_history_off_by_default(self):
        line = LineTopology(5)
        pattern = InjectionPattern.from_tuples([(0, 0, 4)])
        result = run_simulation(line, ForwardEverything(line), pattern)
        assert result.history == []


class TestCapacityEnforcement:
    def test_double_activation_rejected(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 0, 3)])
        simulator = Simulator(line, DoubleActivation(line), pattern)
        with pytest.raises(CapacityViolationError):
            simulator.run()

    def test_unknown_node_rejected(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 0, 3)])
        simulator = Simulator(line, UnknownNodeActivation(line), pattern)
        with pytest.raises(SchedulingError):
            simulator.run()

    def test_validation_can_be_disabled(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 0, 3)])
        simulator = Simulator(
            line, UnknownNodeActivation(line), pattern, validate_capacity=False
        )
        # Still fails, but deeper in the engine (unknown buffer), proving the
        # flag only disables the validation layer, not correctness.
        with pytest.raises(Exception):
            simulator.run()

    def test_empty_activation_is_silent_noop(self):
        line = LineTopology(4)

        class ActivatesEmpty(ForwardEverything):
            def select_activations(self, round_number):
                return [Activation(node=2, key="q")]

        pattern = InjectionPattern.from_tuples([(0, 0, 1)])
        result = run_simulation(line, ActivatesEmpty(line), pattern, drain=False)
        assert result.packets_delivered == 0


class TestDraining:
    def test_drain_stops_at_quiescence_for_lazy_algorithms(self):
        # PTS never forwards a lone packet, so the run cannot drain; the
        # simulator must still terminate (via quiescence detection).
        line = LineTopology(10)
        pattern = InjectionPattern.from_tuples([(0, 0, 9)])
        result = run_simulation(line, PeakToSink(line), pattern)
        assert not result.drained
        assert result.packets_undelivered == 1
        assert result.rounds_executed < 200

    def test_drain_cap_respected(self):
        line = LineTopology(10)
        pattern = InjectionPattern.from_tuples([(0, 0, 9)])
        simulator = Simulator(line, PeakToSink(line), pattern)
        result = simulator.run(max_drain_rounds=5)
        assert result.rounds_executed <= 1 + 5

    def test_virtual_sink_delivery(self):
        line = LineTopology(4, allow_virtual_sink=True)
        pattern = InjectionPattern.from_tuples([(0, 0, 4)])
        result = run_simulation(line, ForwardEverything(line), pattern)
        assert result.packets_delivered == 1

    def test_summary_row_shape(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 0, 3)])
        result = run_simulation(line, ForwardEverything(line), pattern)
        row = result.summary_row()
        assert row["algorithm"] == "ForwardEverything"
        assert row["max_occupancy"] == 1
        assert row["delivered"] == 1
