"""Differential resume-equivalence suite for :mod:`repro.checkpoint`.

The headline claim of the checkpoint subsystem is test-shaped: for every
algorithm x adversary x history-mode combination,

    ``run(T)``  ==  ``run to k; checkpoint; restore; run to T``

bit for bit, where equality is on the full :class:`SimulationResult`
(including per-round records under ``history="full"``).  The grid below
covers the six algorithm families {PTS, PPTS, HPTS, tree, local, greedy}
against bounded / trickle / stress / adaptive traffic under all three
history policies, plus the round-0 and final-round checkpoint edge cases.

Also here: the checkpoint-format fuzz/negative tests (truncation, version
mismatch, spec mismatch — each a typed error, exercised through the CLI with
non-zero exit codes) and the :class:`StreamingAdversary` packet-id alignment
regression around empty rounds.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary.generators import bursty_adversary, trickle_adversary
from repro.api import Scenario, ScenarioSpec, Session
from repro.checkpoint import (
    FORMAT_VERSION,
    load_checkpoint,
    resume_spec_hash,
    save_checkpoint,
)
from repro.cli import main as cli_main
from repro.core.packet import current_allocator, packet_id_scope
from repro.network.errors import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointSpecMismatchError,
    CheckpointVersionError,
)
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology

N = 16
ROUNDS = 36
MID = 17  # deliberately not a divisor of ROUNDS: a mid-run round boundary

# -- the scenario grid ----------------------------------------------------------

#: (adversary name, rho, sigma, extra params) menus per destination pattern.
SINGLE_DEST_ADVERSARIES = [
    ("single", 1.0, 2.0, {}),              # bounded family, one destination
    ("trickle", 0.7, 1.0, {}),             # O(1)/round streaming workhorse
    ("burst", 1.0, 2.0, {}),               # deterministic stress pattern
    ("hotspot", 0.9, 2.0, {}),             # adaptive, configuration-aware
]
MULTI_DEST_ADVERSARIES = [
    ("bounded", 0.8, 3.0, {"num_destinations": 3}),
    ("trickle", 0.7, 1.0, {"destinations": [5, 11, 15]}),
    ("burst", 1.0, 2.0, {}),
    ("hotspot", 0.9, 2.0, {"destinations": [7, 15]}),
]
HPTS_ADVERSARIES = [  # Theorem 4.1 wants rho * ell <= 1 with ell = 2
    ("bounded", 0.5, 2.0, {"num_destinations": 3}),
    ("trickle", 0.5, 1.0, {}),
    ("burst", 0.5, 2.0, {}),
    ("hotspot", 0.5, 2.0, {"destinations": [7, 15]}),
]

LINE_ALGORITHMS = [
    ("pts", {}, SINGLE_DEST_ADVERSARIES),
    ("local", {"locality": 2}, SINGLE_DEST_ADVERSARIES),
    ("ppts", {}, MULTI_DEST_ADVERSARIES),
    ("greedy", {}, MULTI_DEST_ADVERSARIES),
    ("hpts", {"levels": 2}, HPTS_ADVERSARIES),
]
TREE_ADVERSARIES = [
    ("bounded", 0.8, 3.0, {}),
    ("convergecast", 1.0, 2.0, {}),
]
HISTORIES = ("summary", "streaming", "full")

#: Adversary builders that can produce the lazy StreamingAdversary front end.
STREAMABLE = {"bounded", "single", "trickle"}


def _grid():
    cases = []
    for algorithm, algo_params, adversaries in LINE_ALGORITHMS:
        for adversary, rho, sigma, params in adversaries:
            for history in HISTORIES:
                cases.append(
                    ("line", algorithm, algo_params, adversary, rho, sigma,
                     params, history)
                )
    for adversary, rho, sigma, params in TREE_ADVERSARIES:
        for history in HISTORIES:
            cases.append(
                ("tree", "tree-ppts", {}, adversary, rho, sigma, params, history)
            )
    return cases


def _case_id(case) -> str:
    kind, algorithm, _, adversary, _, _, _, history = case
    return f"{kind}-{algorithm}-{adversary}-{history}"


def build_spec(kind, algorithm, algo_params, adversary, rho, sigma,
               adv_params, history) -> ScenarioSpec:
    if kind == "tree":
        scenario = Scenario.tree("binary", depth=3)
    else:
        scenario = Scenario.line(N)
    adv_params = dict(adv_params)
    if history == "streaming" and adversary in STREAMABLE:
        # Exercise the lazy front end exactly where the memory-lean runs do.
        adv_params["stream"] = True
    scenario.algorithm(algorithm, **algo_params)
    scenario.adversary(adversary, rho=rho, sigma=sigma, rounds=ROUNDS, **adv_params)
    scenario.policy(history=history, seed=23)
    return scenario.build()


def checkpoint_at(spec: ScenarioSpec, k: int, path: str) -> None:
    """Run ``spec`` to round ``k`` only, then snapshot it to ``path``.

    ``k`` is clamped to the adversary's horizon: an eager pattern trims
    trailing empty rounds, and running past its horizon would execute rounds
    the uninterrupted ``Session.run`` never does.
    """
    session = Session()
    policy = spec.policy
    with packet_id_scope():
        prepared = session.prepare(spec)
        simulator = Simulator(
            prepared.topology, prepared.algorithm, prepared.adversary,
            record_history=policy.record_history,
            record_occupancy_vectors=policy.record_occupancy_vectors,
            history=policy.history,
            validate_capacity=policy.validate_capacity,
        )
        simulator.run(min(k, prepared.adversary.horizon), drain=False)
        simulator.save_checkpoint(path, spec=spec)


def assert_resume_equivalent(spec: ScenarioSpec, k: int, tmp_path) -> None:
    path = str(tmp_path / "run.ckpt")
    full = Session().run(spec)
    checkpoint_at(spec, k, path)
    resumed = Session().resume(path)
    assert resumed.result == full.result
    assert resumed.bound == full.bound
    assert resumed.within_bound == full.within_bound


class TestDifferentialGrid:
    @pytest.mark.parametrize("case", _grid(), ids=_case_id)
    def test_save_restore_matches_uninterrupted(self, case, tmp_path):
        spec = build_spec(*case)
        assert_resume_equivalent(spec, MID, tmp_path)

    @pytest.mark.parametrize("k", [0, 1, ROUNDS - 1, ROUNDS], ids=lambda k: f"k{k}")
    @pytest.mark.parametrize(
        "case",
        [
            ("line", "ppts", {}, "bounded", 0.8, 3.0, {"num_destinations": 3},
             "summary"),
            ("line", "hpts", {"levels": 2}, "trickle", 0.5, 1.0, {}, "streaming"),
            ("line", "pts", {}, "hotspot", 0.9, 2.0, {}, "full"),
        ],
        ids=_case_id,
    )
    def test_round_boundary_edges(self, case, k, tmp_path):
        # k=0: nothing has happened yet (allocator and cursors at origin);
        # k=ROUNDS-1 / k=ROUNDS: the snapshot brackets the final injection.
        spec = build_spec(*case)
        assert_resume_equivalent(spec, k, tmp_path)

    def test_occupancy_vector_history_round_trips(self, tmp_path):
        spec = (
            Scenario.line(N)
            .algorithm("ppts")
            .adversary("bounded", rho=0.8, sigma=3.0, rounds=ROUNDS,
                       num_destinations=3)
            .policy(record_history=True, record_occupancy_vectors=True, seed=23)
            .build()
        )
        assert_resume_equivalent(spec, MID, tmp_path)

    def test_periodic_checkpoints_through_run_policy(self, tmp_path):
        path = str(tmp_path / "periodic.ckpt")
        spec = (
            Scenario.line(N)
            .algorithm("ppts")
            .adversary("bounded", rho=0.8, sigma=3.0, rounds=ROUNDS,
                       num_destinations=3)
            .policy(seed=23)
            .build()
        )
        full = Session().run(spec)
        with_ckpt = (
            Scenario.from_spec(spec)
            .policy(checkpoint_every=10, checkpoint_path=path)
            .build()
        )
        observed = Session().run(with_ckpt)
        # Saving snapshots is observation-only.
        assert observed.result == full.result
        # The surviving file is the last multiple of 10 (round 30).
        checkpoint = load_checkpoint(path)
        assert checkpoint.round == 30
        resumed = Session().resume(path)
        assert resumed.result == full.result

    def test_resume_accepts_spec_modulo_checkpoint_policy(self, tmp_path):
        path = str(tmp_path / "mod.ckpt")
        spec = build_spec("line", "ppts", {}, "bounded", 0.8, 3.0,
                          {"num_destinations": 3}, "summary")
        with_ckpt = (
            Scenario.from_spec(spec)
            .policy(checkpoint_every=MID, checkpoint_path=path)
            .build()
        )
        full = Session().run(with_ckpt)
        # The plain spec (no checkpoint fields) names the same execution.
        assert resume_spec_hash(spec) == resume_spec_hash(with_ckpt)
        resumed = Session().resume(path, spec=spec)
        assert resumed.result == full.result


# -- streaming packet-id alignment (regression) ----------------------------------


class TestStreamingIdAlignment:
    def _eager_ids(self, horizon):
        topology = LineTopology(N)
        adversary = bursty_adversary(
            topology, 1.0, 2.0, horizon, 2, burst_period=16, seed=5
        )
        return [
            [p.packet_id for p in adversary.injections_for_round(t)]
            for t in range(horizon)
        ]

    @pytest.mark.parametrize("stop", [3, 15, 16, 31], ids=lambda s: f"stop{s}")
    def test_resumed_stream_ids_match_eager_pattern(self, stop):
        """Resuming mid-stream (including mid-silence and just after a burst)
        must keep allocating exactly the ids the eager pattern holds.

        Bursty traffic injects only in rounds 15, 31, ...; every other round
        is empty, so a cursor taken there must not cause any earlier round to
        be replayed (re-spending ids) nor any pending row to be skipped.
        """
        horizon = 48
        with packet_id_scope():
            eager_ids = self._eager_ids(horizon)
        with packet_id_scope():
            topology = LineTopology(N)
            stream = bursty_adversary(
                topology, 1.0, 2.0, horizon, 2, burst_period=16, seed=5,
                stream=True,
            )
            consumed = [
                [p.packet_id for p in stream.injections_for_round(t)]
                for t in range(stop)
            ]
            assert consumed == eager_ids[:stop]
            cursor = stream.cursor()
            next_id = current_allocator().next_value
        with packet_id_scope() as allocator:
            fresh = bursty_adversary(
                LineTopology(N), 1.0, 2.0, horizon, 2, burst_period=16, seed=5,
                stream=True,
            )
            fresh.resume(cursor)
            allocator.reset(next_id)
            resumed_ids = [
                [p.packet_id for p in fresh.injections_for_round(t)]
                for t in range(stop, horizon)
            ]
        assert resumed_ids == eager_ids[stop:]

    def test_resume_requires_fresh_stream(self):
        topology = LineTopology(N)
        stream = trickle_adversary(topology, 0.7, 1.0, 20, seed=3, stream=True)
        stream.injections_for_round(0)
        cursor = stream.cursor()
        with pytest.raises(CheckpointError):
            stream.resume(cursor)  # already consumed

    def test_cursor_on_unstarted_stream_restarts_cleanly(self):
        with packet_id_scope():
            topology = LineTopology(N)
            stream = trickle_adversary(topology, 0.7, 1.0, 20, seed=3, stream=True)
            cursor = stream.cursor()
            assert cursor == {"next_round": 0, "rows": None}
            fresh = trickle_adversary(topology, 0.7, 1.0, 20, seed=3, stream=True)
            fresh.resume(cursor)
            assert fresh.rounds_generated == 0
            assert [p.packet_id for p in fresh.injections_for_round(1)] == [0]


# -- format fuzz / negative tests -------------------------------------------------


def _make_checkpoint(tmp_path) -> str:
    path = str(tmp_path / "victim.ckpt")
    spec = build_spec("line", "ppts", {}, "bounded", 0.8, 3.0,
                      {"num_destinations": 3}, "summary")
    checkpoint_at(spec, MID, path)
    return path


class TestFormatNegative:
    def test_truncated_file_raises_typed_error(self, tmp_path):
        path = _make_checkpoint(tmp_path)
        data = open(path, "rb").read()
        for cut in (0, 5, len(data) // 2, len(data) - 3):
            (tmp_path / "cut.ckpt").write_bytes(data[:cut])
            with pytest.raises(CheckpointFormatError):
                load_checkpoint(str(tmp_path / "cut.ckpt"))

    def test_bad_magic_raises_format_error(self, tmp_path):
        path = _make_checkpoint(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[:4] = b"NOPE"
        (tmp_path / "magic.ckpt").write_bytes(bytes(data))
        with pytest.raises(CheckpointFormatError):
            load_checkpoint(str(tmp_path / "magic.ckpt"))

    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        path = _make_checkpoint(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[-20] ^= 0xFF  # somewhere inside the payload columns
        (tmp_path / "flip.ckpt").write_bytes(bytes(data))
        with pytest.raises(CheckpointFormatError, match="CRC"):
            load_checkpoint(str(tmp_path / "flip.ckpt"))

    def test_version_mismatch_raises_version_error(self, tmp_path):
        import struct

        path = _make_checkpoint(tmp_path)
        data = bytearray(open(path, "rb").read())
        # The u32 version sits directly after the 9-byte magic.
        struct.pack_into("<I", data, 9, FORMAT_VERSION + 1)
        (tmp_path / "ver.ckpt").write_bytes(bytes(data))
        with pytest.raises(CheckpointVersionError) as excinfo:
            load_checkpoint(str(tmp_path / "ver.ckpt"))
        assert excinfo.value.found == FORMAT_VERSION + 1
        assert excinfo.value.supported == FORMAT_VERSION

    def test_resume_under_different_spec_is_refused(self, tmp_path):
        path = _make_checkpoint(tmp_path)
        other = build_spec("line", "ppts", {}, "bounded", 0.8, 3.0,
                          {"num_destinations": 4}, "summary")
        with pytest.raises(CheckpointSpecMismatchError):
            Session().resume(path, spec=other)

    def test_restore_under_wrong_ingredients_is_refused(self, tmp_path):
        path = _make_checkpoint(tmp_path)
        checkpoint = load_checkpoint(path)
        from repro.core.ppts import ParallelPeakToSink
        from repro.checkpoint import restore_simulator

        wrong_size = LineTopology(N + 1)
        with pytest.raises(CheckpointSpecMismatchError):
            restore_simulator(
                checkpoint, wrong_size, ParallelPeakToSink(wrong_size), None
            )


# -- CLI integration ---------------------------------------------------------------


CLI_SCENARIO = [
    "simulate", "--algorithm", "pts", "--rho", "1.0", "--sigma", "2",
    "--rounds", "60", "--seed", "3",
]


class TestCheckpointCli:
    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "cli.ckpt")
        assert cli_main(CLI_SCENARIO + ["--json"]) == 0
        baseline = json.loads(capsys.readouterr().out)
        assert cli_main(
            CLI_SCENARIO
            + ["--checkpoint-every", "25", "--checkpoint", path, "--json"]
        ) == 0
        checkpointed = json.loads(capsys.readouterr().out)
        assert checkpointed == baseline
        assert cli_main(["simulate", "--resume", path, "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed == baseline

    def test_resume_keeps_checkpointing_when_asked(self, tmp_path, capsys):
        """--checkpoint-every on the resumed leg must produce fresh snapshots
        even when the original run never checkpointed through its policy."""
        first = str(tmp_path / "first.ckpt")
        second = str(tmp_path / "second.ckpt")
        spec = build_spec("line", "pts", {}, "single", 1.0, 2.0, {}, "summary")
        checkpoint_at(spec, 10, first)  # engine-level save: plain policy
        assert cli_main(
            ["simulate", "--resume", first,
             "--checkpoint-every", "20", "--checkpoint", second, "--json"]
        ) == 0
        resumed = json.loads(capsys.readouterr().out)
        later = load_checkpoint(second)
        assert later.round > 10
        # ... and the new snapshot itself resumes to the same answer.
        assert cli_main(["simulate", "--resume", second, "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == resumed

    def test_checkpoint_every_without_file_is_an_error(self, capsys):
        code = cli_main(CLI_SCENARIO + ["--checkpoint-every", "10"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_truncated_checkpoint_exits_nonzero(self, tmp_path, capsys):
        path = str(tmp_path / "cli.ckpt")
        assert cli_main(
            CLI_SCENARIO + ["--checkpoint-every", "25", "--checkpoint", path]
        ) == 0
        capsys.readouterr()
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) - 10])
        code = cli_main(["simulate", "--resume", path])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_version_mismatch_exits_nonzero(self, tmp_path, capsys):
        import struct

        path = str(tmp_path / "cli.ckpt")
        assert cli_main(
            CLI_SCENARIO + ["--checkpoint-every", "25", "--checkpoint", path]
        ) == 0
        capsys.readouterr()
        data = bytearray(open(path, "rb").read())
        struct.pack_into("<I", data, 9, 999)
        open(path, "wb").write(bytes(data))
        code = cli_main(["simulate", "--resume", path])
        assert code == 2
        assert "version" in capsys.readouterr().err

    def test_resume_with_mismatching_spec_exits_nonzero(self, tmp_path, capsys):
        path = str(tmp_path / "cli.ckpt")
        assert cli_main(
            CLI_SCENARIO + ["--checkpoint-every", "25", "--checkpoint", path]
        ) == 0
        capsys.readouterr()
        other = (
            Scenario.line(8)
            .algorithm("pts")
            .adversary("single", rho=1.0, sigma=2.0, rounds=60)
            .build()
        )
        spec_path = tmp_path / "other.json"
        spec_path.write_text(other.to_json())
        code = cli_main(
            ["simulate", "--resume", path, "--spec", str(spec_path)]
        )
        assert code == 2
        assert "spec hash" in capsys.readouterr().err


# -- direct engine API --------------------------------------------------------------


class TestEngineApi:
    def test_from_checkpoint_continues_bit_identically(self, tmp_path):
        path = str(tmp_path / "engine.ckpt")

        def ingredients():
            topology = LineTopology(N)
            from repro.core.ppts import ParallelPeakToSink

            adversary = trickle_adversary(
                topology, 0.7, 1.0, ROUNDS, destinations=[5, 11, 15], seed=9,
                stream=True,
            )
            return topology, ParallelPeakToSink(topology), adversary

        with packet_id_scope():
            topology, algorithm, adversary = ingredients()
            full = Simulator(
                topology, algorithm, adversary, history="streaming"
            ).run(ROUNDS)
        with packet_id_scope():
            topology, algorithm, adversary = ingredients()
            simulator = Simulator(
                topology, algorithm, adversary, history="streaming"
            )
            simulator.run(MID, drain=False)
            written = save_checkpoint(simulator, path)
            assert written > 0
        with packet_id_scope():
            topology, algorithm, adversary = ingredients()
            restored = Simulator.from_checkpoint(
                path, topology=topology, algorithm=algorithm, adversary=adversary
            )
            resumed = restored.run(ROUNDS)
        assert resumed == full

    def test_loaded_checkpoint_survives_a_resume(self, tmp_path):
        """Resuming must not mutate the loaded Checkpoint: a second restore
        from the same object gets the identical engine (streaming included,
        where the restored PacketStore keeps appending)."""
        path = str(tmp_path / "twice.ckpt")
        spec = build_spec("line", "ppts", {}, "bounded", 0.8, 3.0,
                          {"num_destinations": 3}, "streaming")
        full = Session().run(spec)
        checkpoint_at(spec, MID, path)
        loaded = load_checkpoint(path)
        store_rows = len(loaded.section("store/rounds"))
        first = Session().resume(loaded)
        assert len(loaded.section("store/rounds")) == store_rows
        second = Session().resume(loaded)
        assert first.result == full.result
        assert second.result == full.result

    def test_resume_under_different_generator_is_refused(self, tmp_path):
        from repro.adversary.generators import saturating_line_adversary
        from repro.core.pts import PeakToSink

        path = str(tmp_path / "mixed.ckpt")
        with packet_id_scope():
            topology = LineTopology(N)
            adversary = saturating_line_adversary(
                topology, 0.8, 2.0, ROUNDS, seed=3, stream=True
            )
            simulator = Simulator(topology, PeakToSink(topology), adversary,
                                  history="streaming")
            simulator.run(MID, drain=False)
            simulator.save_checkpoint(path)
        with packet_id_scope():
            topology = LineTopology(N)
            # Same cursor shape (rng + bucket), different generator class:
            # must be refused, not silently mixed.
            other = trickle_adversary(topology, 0.8, 2.0, ROUNDS, seed=3,
                                      stream=True)
            with pytest.raises(CheckpointError):
                Simulator.from_checkpoint(
                    path, topology=topology, algorithm=PeakToSink(topology),
                    adversary=other,
                )

    def test_streaming_checkpoint_restores_injection_log(self, tmp_path):
        path = str(tmp_path / "log.ckpt")

        def ingredients():
            topology = LineTopology(N)
            from repro.core.pts import PeakToSink

            return (
                topology,
                PeakToSink(topology),
                trickle_adversary(topology, 1.0, 1.0, ROUNDS, seed=4, stream=True),
            )

        with packet_id_scope():
            topology, algorithm, adversary = ingredients()
            simulator = Simulator(topology, algorithm, adversary, history="streaming")
            simulator.run(MID, drain=False)
            expected = [simulator.packet_store.row_tuple(i)
                        for i in range(len(simulator.packet_store))]
            simulator.save_checkpoint(path)
        with packet_id_scope():
            topology, algorithm, adversary = ingredients()
            restored = Simulator.from_checkpoint(
                path, topology=topology, algorithm=algorithm, adversary=adversary
            )
            rows = [restored.packet_store.row_tuple(i)
                    for i in range(len(restored.packet_store))]
            assert rows == expected
            restored.run(ROUNDS)
            assert len(restored.packet_store) == restored._injected
