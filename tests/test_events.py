"""Unit tests for round records, results and the occupancy timeline."""

from __future__ import annotations

import pytest

from repro.network.events import OccupancyTimeline, RoundRecord, SimulationResult


def _record(round_number: int, occupancy: int, forwarded: int = 1) -> RoundRecord:
    return RoundRecord(
        round=round_number,
        injected=1,
        forwarded=forwarded,
        delivered=0,
        max_occupancy=occupancy,
        max_occupancy_after_forwarding=max(0, occupancy - 1),
        staged=0,
    )


class TestOccupancyTimeline:
    def test_tracks_global_and_per_node_maxima(self):
        timeline = OccupancyTimeline()
        timeline.observe({0: 2, 1: 5}, staged=1)
        timeline.observe({0: 7, 1: 1}, staged=4)
        assert timeline.max_occupancy == 7
        assert timeline.max_per_node == {0: 7, 1: 5}
        assert timeline.max_staged == 4

    def test_empty_observation(self):
        timeline = OccupancyTimeline()
        timeline.observe({}, staged=0)
        assert timeline.max_occupancy == 0
        assert timeline.max_per_node == {}


class TestSimulationResult:
    def _result(self, **overrides) -> SimulationResult:
        values = dict(
            algorithm="PPTS",
            num_nodes=8,
            rounds_executed=20,
            max_occupancy=5,
            packets_injected=40,
            packets_delivered=30,
            packets_undelivered=10,
            drained=False,
        )
        values.update(overrides)
        return SimulationResult(**values)

    def test_throughput(self):
        assert self._result().throughput == pytest.approx(30 / 20)
        assert self._result(rounds_executed=0).throughput == 0.0

    def test_occupancy_timeline_from_history(self):
        history = [_record(t, occupancy) for t, occupancy in enumerate([1, 4, 2])]
        result = self._result(history=history)
        assert result.occupancy_timeline() == [1, 4, 2]

    def test_summary_row_contents(self):
        row = self._result().summary_row()
        assert row["algorithm"] == "PPTS"
        assert row["max_occupancy"] == 5
        assert row["drained"] is False
        assert row["rounds"] == 20

    def test_round_record_is_immutable(self):
        record = _record(0, 3)
        with pytest.raises(AttributeError):
            record.injected = 5  # type: ignore[misc]
