"""Unit tests for the declarative spec layer (repro.api.specs)."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    AdversarySpec,
    AlgorithmSpec,
    RunPolicy,
    Scenario,
    ScenarioSpec,
    SpecError,
    TopologySpec,
)


def _full_spec() -> ScenarioSpec:
    return (
        Scenario.line(64)
        .algorithm("hpts", levels=3, branching=4, rho=1 / 3)
        .adversary("hierarchy", rho=1 / 3, sigma=2, rounds=90, branching=4, levels=3)
        .policy(seed=7, record_history=True)
        .named("round-trip")
        .build()
    )


class TestValidation:
    def test_rho_out_of_range(self):
        with pytest.raises(SpecError):
            AdversarySpec(rho=0.0)
        with pytest.raises(SpecError):
            AdversarySpec(rho=1.5)

    def test_negative_sigma(self):
        with pytest.raises(SpecError):
            AdversarySpec(sigma=-1)

    def test_rounds_must_be_non_negative_int(self):
        with pytest.raises(SpecError):
            AdversarySpec(rounds=-1)
        with pytest.raises(SpecError):
            AdversarySpec(rounds=2.5)  # type: ignore[arg-type]

    def test_empty_names_rejected(self):
        with pytest.raises(SpecError):
            AlgorithmSpec(name="")
        with pytest.raises(SpecError):
            TopologySpec(kind="")

    def test_params_must_be_json_serialisable(self):
        with pytest.raises(SpecError):
            AlgorithmSpec("ppts", {"bad": object()})

    def test_params_must_be_a_mapping(self):
        with pytest.raises(SpecError):
            AlgorithmSpec("ppts", [1, 2])  # type: ignore[arg-type]

    def test_policy_field_types(self):
        with pytest.raises(SpecError):
            RunPolicy(rounds=-1)
        with pytest.raises(SpecError):
            RunPolicy(drain="yes")  # type: ignore[arg-type]
        with pytest.raises(SpecError):
            RunPolicy(seed="abc")  # type: ignore[arg-type]

    def test_scenario_requires_spec_components(self):
        with pytest.raises(SpecError):
            ScenarioSpec(topology={"kind": "line"})  # type: ignore[arg-type]

    def test_unknown_keys_rejected_in_from_dict(self):
        with pytest.raises(SpecError):
            TopologySpec.from_dict({"kind": "line", "bogus": 1})
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict({"topologyy": {}})

    def test_builder_requires_algorithm_and_adversary(self):
        with pytest.raises(SpecError):
            Scenario.line(8).adversary("burst").build()
        with pytest.raises(SpecError):
            Scenario.line(8).algorithm("pts").build()


class TestRoundTrip:
    def test_dict_round_trip_is_equality(self):
        spec = _full_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_equality(self):
        spec = _full_spec()
        clone = ScenarioSpec.from_json(spec.to_json(indent=2))
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()
        assert hash(clone) == hash(spec)

    def test_json_layout_matches_documented_schema(self):
        payload = json.loads(_full_spec().to_json())
        assert set(payload) == {"topology", "algorithm", "adversary", "policy", "name"}
        assert payload["topology"] == {"kind": "line", "params": {"num_nodes": 64}}
        assert payload["adversary"]["rho"] == pytest.approx(1 / 3)
        assert payload["policy"]["seed"] == 7

    def test_invalid_json_raises_spec_error(self):
        with pytest.raises(SpecError):
            ScenarioSpec.from_json("{not json")

    def test_params_normalised_so_tuples_compare_equal(self):
        a = AlgorithmSpec("tree-ppts", {"destinations": (1, 2, 3)})
        b = AlgorithmSpec("tree-ppts", {"destinations": [1, 2, 3]})
        assert a == b

    def test_distinct_specs_have_distinct_hashes(self):
        assert TopologySpec.line(8).spec_hash() != TopologySpec.line(9).spec_hash()

    def test_label_defaults_to_quadruple(self):
        spec = ScenarioSpec()
        assert spec.label == "line/bounded/ppts"
        assert _full_spec().label == "round-trip"


class TestBuilder:
    def test_fluent_chain_builds_expected_spec(self):
        spec = (
            Scenario.line(16)
            .algorithm("pts")
            .adversary("burst", rho=0.5, sigma=1, rounds=40)
            .rounds(30)
            .drain(False)
            .seed(11)
            .build()
        )
        assert spec.topology == TopologySpec.line(16)
        assert spec.algorithm.name == "pts"
        assert spec.adversary.rho == 0.5
        assert spec.policy.rounds == 30
        assert spec.policy.drain is False
        assert spec.policy.seed == 11

    def test_from_spec_round_trips_through_builder(self):
        spec = _full_spec()
        assert Scenario.from_spec(spec).build() == spec
