"""Unit tests for the PTS algorithm (Algorithm 1, Proposition 3.1)."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.generators import single_destination_adversary
from repro.adversary.stress import pts_burst_stress
from repro.core.bounds import pts_upper_bound
from repro.core.pts import PeakToSink
from repro.network.errors import ConfigurationError, SchedulingError
from repro.network.simulator import Simulator, run_simulation
from repro.network.topology import LineTopology


class TestConfiguration:
    def test_default_destination_is_last_node(self):
        line = LineTopology(8)
        assert PeakToSink(line).destination == 7

    def test_custom_destination(self):
        line = LineTopology(8)
        assert PeakToSink(line, destination=5).destination == 5

    def test_invalid_destination(self):
        line = LineTopology(8)
        with pytest.raises(ConfigurationError):
            PeakToSink(line, destination=0)
        with pytest.raises(ConfigurationError):
            PeakToSink(line, destination=9)

    def test_wrong_destination_packet_rejected(self):
        line = LineTopology(8)
        algorithm = PeakToSink(line, destination=7)
        pattern = InjectionPattern.from_tuples([(0, 0, 5)])
        with pytest.raises(SchedulingError):
            run_simulation(line, algorithm, pattern)

    def test_theoretical_bound(self):
        line = LineTopology(8)
        assert PeakToSink(line).theoretical_bound(3) == 5


class TestForwardingRule:
    def test_no_bad_buffer_means_no_forwarding(self):
        line = LineTopology(6)
        algorithm = PeakToSink(line)
        # One packet in each of two buffers: nothing is bad, nothing moves.
        pattern = InjectionPattern.from_tuples([(0, 0, 5), (0, 2, 5)])
        result = run_simulation(line, algorithm, pattern, drain=False)
        assert result.packets_delivered == 0
        assert algorithm.occupancy(0) == 1
        assert algorithm.occupancy(2) == 1

    def test_bad_buffer_triggers_suffix_forwarding(self):
        line = LineTopology(6)
        algorithm = PeakToSink(line)
        # Two packets at buffer 1 (bad) and one at buffer 3: both 1 and 3 forward.
        pattern = InjectionPattern.from_tuples([(0, 1, 5), (0, 1, 5), (0, 3, 5)])
        simulator = Simulator(line, algorithm, pattern, record_history=True)
        result = simulator.run(num_rounds=1, drain=False)
        assert result.history[0].forwarded == 2
        assert algorithm.occupancy(1) == 1
        assert algorithm.occupancy(2) == 1
        assert algorithm.occupancy(4) == 1

    def test_buffers_left_of_bad_buffer_do_not_forward(self):
        line = LineTopology(6)
        algorithm = PeakToSink(line)
        pattern = InjectionPattern.from_tuples([(0, 0, 5), (0, 3, 5), (0, 3, 5)])
        simulator = Simulator(line, algorithm, pattern)
        simulator.run(num_rounds=1, drain=False)
        # Buffer 0 is left of the left-most bad buffer (3), so it kept its packet.
        assert algorithm.occupancy(0) == 1
        assert algorithm.occupancy(3) == 1

    def test_work_conserving_variant_forwards_without_badness(self):
        line = LineTopology(6)
        algorithm = PeakToSink(line, work_conserving=True)
        pattern = InjectionPattern.from_tuples([(0, 0, 5)])
        result = run_simulation(line, algorithm, pattern)
        assert result.packets_delivered == 1
        assert result.drained


class TestProposition31:
    @pytest.mark.parametrize("sigma", [0, 1, 2, 4, 8])
    def test_burst_stress_respects_bound(self, sigma):
        line = LineTopology(32)
        pattern = pts_burst_stress(line, rho=1.0, sigma=sigma, num_rounds=150)
        result = run_simulation(line, PeakToSink(line), pattern)
        assert result.max_occupancy <= pts_upper_bound(sigma)

    @pytest.mark.parametrize("rho", [0.25, 0.5, 1.0])
    def test_random_adversaries_respect_bound(self, rho):
        line = LineTopology(24)
        sigma = 3
        pattern = single_destination_adversary(
            line, rho, sigma, num_rounds=120, seed=17
        )
        result = run_simulation(line, PeakToSink(line), pattern)
        assert result.max_occupancy <= pts_upper_bound(sigma)

    def test_bound_is_nearly_tight_under_stress(self):
        """The burst workload should reach at least half of the 2 + sigma bound."""
        line = LineTopology(32)
        sigma = 6
        pattern = pts_burst_stress(line, rho=1.0, sigma=sigma, num_rounds=200)
        result = run_simulation(line, PeakToSink(line), pattern)
        assert result.max_occupancy >= (2 + sigma) / 2

    def test_virtual_sink_destination_supported(self):
        line = LineTopology(16, allow_virtual_sink=True)
        pattern = pts_burst_stress(line, 1.0, 2, 80, destination=16)
        result = run_simulation(
            line, PeakToSink(line, destination=16), pattern
        )
        assert result.max_occupancy <= pts_upper_bound(2)
