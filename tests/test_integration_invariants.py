"""Integration tests for the paper's badness/excess invariants.

The proofs of Propositions 3.1/3.2 hinge on two round-by-round invariants:

* after the injection step:   ``B^t(i)  <= xi_t(i) + 1``
* after the forwarding step:  ``B^{t+}(i) <= xi_t(i)``

These tests run the real algorithms against real adversaries and check the
invariants at every round using the *independent* badness and excess modules
(not the algorithms' internal state), which guards against the algorithm and
the analysis code sharing a bug.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.generators import random_line_adversary, single_destination_adversary
from repro.adversary.stress import round_robin_destination_stress
from repro.core.badness import line_badness_single_destination, line_total_badness
from repro.core.excess import ExcessTracker
from repro.core.ppts import ParallelPeakToSink
from repro.core.pts import PeakToSink
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology


class InvariantCheckingPPTS(ParallelPeakToSink):
    """PPTS that snapshots badness before and after each forwarding step."""

    def __init__(self, topology, destinations=None):
        super().__init__(topology, destinations)
        self.pre_forwarding_badness: List[Dict[int, int]] = []
        self.post_forwarding_badness: List[Dict[int, int]] = []

    def select_activations(self, round_number):
        self.pre_forwarding_badness.append(
            line_total_badness(self.buffers, self.destinations())
        )
        return super().select_activations(round_number)

    def on_round_end(self, round_number):
        self.post_forwarding_badness.append(
            line_total_badness(self.buffers, self.destinations())
        )


class InvariantCheckingPTS(PeakToSink):
    """PTS variant of the same instrumentation (single destination)."""

    def __init__(self, topology, destination=None):
        super().__init__(topology, destination)
        self.pre_forwarding_badness: List[Dict[int, int]] = []
        self.post_forwarding_badness: List[Dict[int, int]] = []

    def select_activations(self, round_number):
        self.pre_forwarding_badness.append(
            line_badness_single_destination(self.buffers, self.destination)
        )
        return super().select_activations(round_number)

    def on_round_end(self, round_number):
        self.post_forwarding_badness.append(
            line_badness_single_destination(self.buffers, self.destination)
        )


def _excess_trajectory(pattern: InjectionPattern, line: LineTopology, rho: float):
    """Per-round excess vectors xi_t(v) for the given pattern."""
    crossings = pattern.crossings_per_round(line)
    tracker = ExcessTracker(line.num_nodes, rho)
    trajectory = []
    for round_crossings in crossings:
        tracker.observe_round(round_crossings)
        trajectory.append(tracker.snapshot())
    return trajectory


def _check_invariants(algorithm, excess_by_round, num_nodes):
    rounds_checked = min(len(excess_by_round), len(algorithm.pre_forwarding_badness))
    assert rounds_checked > 0
    for t in range(rounds_checked):
        excess = excess_by_round[t]
        before = algorithm.pre_forwarding_badness[t]
        after = algorithm.post_forwarding_badness[t]
        for i in range(num_nodes):
            assert before[i] <= excess[i] + 1 + 1e-9, (t, i, before[i], excess[i])
            assert after[i] <= excess[i] + 1e-9, (t, i, after[i], excess[i])


class TestPTSInvariants:
    @pytest.mark.parametrize("rho,sigma", [(1.0, 0), (1.0, 3), (0.5, 2)])
    def test_badness_bounded_by_excess_random_traffic(self, rho, sigma):
        line = LineTopology(24)
        pattern = single_destination_adversary(line, rho, sigma, 100, seed=5)
        algorithm = InvariantCheckingPTS(line)
        Simulator(line, algorithm, pattern).run(num_rounds=pattern.horizon, drain=False)
        excess = _excess_trajectory(pattern, line, rho)
        _check_invariants(algorithm, excess, line.num_nodes)


class TestPPTSInvariants:
    @pytest.mark.parametrize("num_destinations", [2, 5, 10])
    def test_badness_bounded_by_excess_round_robin(self, num_destinations):
        line = LineTopology(32)
        rho, sigma = 1.0, 2
        pattern = round_robin_destination_stress(
            line, rho, sigma, 150, num_destinations
        )
        algorithm = InvariantCheckingPPTS(line)
        Simulator(line, algorithm, pattern).run(num_rounds=pattern.horizon, drain=False)
        excess = _excess_trajectory(pattern, line, rho)
        _check_invariants(algorithm, excess, line.num_nodes)

    @pytest.mark.parametrize("seed", range(3))
    def test_badness_bounded_by_excess_random_traffic(self, seed):
        line = LineTopology(24)
        rho, sigma = 0.75, 2
        pattern = random_line_adversary(
            line, rho, sigma, 100, num_destinations=4, seed=seed
        )
        algorithm = InvariantCheckingPPTS(line)
        Simulator(line, algorithm, pattern).run(num_rounds=pattern.horizon, drain=False)
        excess = _excess_trajectory(pattern, line, rho)
        _check_invariants(algorithm, excess, line.num_nodes)

    def test_forwarding_never_increases_badness(self):
        """Lemma 3.4's conclusion at the whole-configuration level."""
        line = LineTopology(24)
        pattern = round_robin_destination_stress(line, 1.0, 3, 120, 6)
        algorithm = InvariantCheckingPPTS(line)
        Simulator(line, algorithm, pattern).run(num_rounds=pattern.horizon, drain=False)
        for before, after in zip(
            algorithm.pre_forwarding_badness, algorithm.post_forwarding_badness
        ):
            for node in before:
                assert after[node] <= before[node]

    def test_forwarding_strictly_reduces_positive_badness(self):
        """If B^t(i) > 0 then B^{t+}(i) <= B^t(i) - 1 (key step of Prop. 3.2)."""
        line = LineTopology(24)
        pattern = round_robin_destination_stress(line, 1.0, 3, 120, 6)
        algorithm = InvariantCheckingPPTS(line)
        Simulator(line, algorithm, pattern).run(num_rounds=pattern.horizon, drain=False)
        for before, after in zip(
            algorithm.pre_forwarding_badness, algorithm.post_forwarding_badness
        ):
            for node, value in before.items():
                if value > 0:
                    assert after[node] <= value - 1
