"""The differential crash suite for the job service.

The headline contract under test: with deterministic crash / slow / drop
faults injected at every job lifecycle phase (``queued``, ``running``,
``checkpointing``, ``draining``), every accepted job either ends ``done``
with a result row **bit-identical** to its fault-free twin, or lands in a
typed terminal failure — never orphaned, never re-run in a stale packet-id
scope.

Fault coordinates follow docs/SERVICE.md: ``segment`` is the job's
admission index, ``round`` the attempt number.  Fault-free twin rows are
computed in-process through :class:`Session` (the worker's result row is
``RunReport.as_row()`` — same canonical form).
"""

from __future__ import annotations

import time

import pytest

from repro.api import ScenarioSpec, Session
from repro.network.faults import SERVICE_FAULT_PHASES, FaultEvent, FaultPlan
from repro.service import JobService, ServiceClient
from repro.service.errors import ServiceError, ServiceUnavailableError

N_JOBS = 2
LONG_ROUNDS = 120_000  # ~3 s of simulation: stays running across a drain


def chaos_spec(seed, rounds=60):
    return {
        "name": f"chaos-{seed}",
        "topology": {"kind": "line", "params": {"num_nodes": 5 + seed}},
        "adversary": {"name": "single", "rho": 0.5, "sigma": 2.0,
                      "rounds": rounds},
        "algorithm": {"name": "greedy", "params": {}},
        "policy": {"seed": seed},
    }


@pytest.fixture(scope="module")
def twin_rows():
    """Fault-free canonical rows, computed once per distinct spec."""
    cache = {}

    def rows_for(rounds=60):
        if rounds not in cache:
            session = Session()
            cache[rounds] = {
                seed: session.run(
                    ScenarioSpec.from_dict(chaos_spec(seed, rounds))
                ).as_row()
                for seed in range(N_JOBS)
            }
        return cache[rounds]

    return rows_for


def make_service(tmp_path, plan, **kwargs):
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("retry_backoff", 0.02)
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("fsync", False)
    return JobService(str(tmp_path / "data"), faults=plan, **kwargs)


def run_under_plan(tmp_path, plan, *, rounds=60, drain_midway=False,
                   checkpoint_every=20, **svc_kwargs):
    """Submit N_JOBS under ``plan``, surviving server deaths, and return
    ``{seed: terminal info view}``.

    The submit loop retries with the same ``submit_key`` on transport
    failure (restarting the server if the fault killed it), exactly as a
    real client should; restarted servers run fault-free — the chaos
    already happened.
    """
    service = make_service(tmp_path, plan, **svc_kwargs).start()
    client = ServiceClient(service.socket_path)

    def revive():
        nonlocal service, client
        if not service.is_alive():
            service = make_service(tmp_path, None, **svc_kwargs).start()
            client = ServiceClient(service.socket_path)

    ids = {}
    for seed in range(N_JOBS):
        for _ in range(4):
            try:
                ids[seed] = client.submit(
                    chaos_spec(seed, rounds),
                    submit_key=f"key-{seed}",
                    checkpoint_every=checkpoint_every,
                )["job"]
                break
            except ServiceUnavailableError:
                time.sleep(0.05)
                revive()
        else:  # pragma: no cover - diagnostic
            pytest.fail(f"could not submit job {seed} under {plan}")

    if drain_midway:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if any(
                client.info(job_id)["state"] == "running"
                for job_id in ids.values()
            ):
                break
            time.sleep(0.02)
        service.stop()  # graceful drain; a draining-phase fault may crash it
        revive()

    views = {}
    for seed, job_id in ids.items():
        for _ in range(4):
            try:
                views[seed] = client.wait(job_id, timeout=180)
                break
            except ServiceError:
                time.sleep(0.05)
                revive()
        else:  # pragma: no cover - diagnostic
            pytest.fail(f"job {job_id} never reached a terminal state")
    service.stop()
    return views


def assert_contract(views, twins):
    """Every job: done + bit-identical row, or typed terminal failure."""
    for seed, view in views.items():
        if view["state"] == "done":
            assert view["result"] == twins[seed], (
                f"job {seed} survived faults but its result row diverged"
            )
        else:
            assert view["state"] in ("failed", "cancelled")
            assert view["error_type"], f"untyped terminal failure: {view}"


class TestDifferentialMatrix:
    """Every (kind, phase) combination upholds the contract."""

    @pytest.mark.parametrize("phase", SERVICE_FAULT_PHASES)
    @pytest.mark.parametrize("kind", ("crash", "slow", "drop"))
    def test_fault_matrix(self, tmp_path, twin_rows, kind, phase):
        event_kwargs = {"delay": 3.0} if kind == "slow" else {}
        plan = FaultPlan(events=(
            FaultEvent(kind=kind, round=0, segment=0, phase=phase,
                       **event_kwargs),
        ))
        svc_kwargs = {}
        if kind == "slow" and phase == "running":
            # The stall must outlive the lease to exercise expiry -> retry,
            # but the lease must still dwarf worker-spawn time (interpreter
            # startup easily exceeds 0.5 s on a loaded box).
            svc_kwargs["lease_seconds"] = 1.0
        drain = phase == "draining"
        views = run_under_plan(
            tmp_path, plan,
            rounds=LONG_ROUNDS if drain else 60,
            checkpoint_every=20_000 if drain else 20,
            drain_midway=drain,
            **svc_kwargs,
        )
        assert_contract(views, twin_rows(LONG_ROUNDS if drain else 60))


class TestFaultSemantics:
    """The interesting paths actually fire (not vacuous matrix passes)."""

    def test_worker_crash_after_checkpoint_resumes_midrun(self, tmp_path, twin_rows):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", round=0, segment=0, phase="running"),
        ))
        views = run_under_plan(tmp_path, plan)
        assert views[0]["state"] == "done"
        assert views[0]["attempts"] == 1  # one crash absorbed
        assert_contract(views, twin_rows())

    def test_worker_crash_before_checkpoint_replays_from_zero(self, tmp_path, twin_rows):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", round=0, segment=1, phase="checkpointing"),
        ))
        views = run_under_plan(tmp_path, plan)
        assert views[1]["state"] == "done"
        assert views[1]["attempts"] == 1
        assert_contract(views, twin_rows())

    def test_lease_expiry_kills_and_retries(self, tmp_path, twin_rows):
        plan = FaultPlan(events=(
            FaultEvent(kind="slow", round=0, segment=0, phase="running",
                       delay=3.0),
        ))
        views = run_under_plan(tmp_path, plan, lease_seconds=1.0)
        assert views[0]["state"] == "done"
        assert views[0]["attempts"] >= 1  # the expired lease burned at least one
        assert_contract(views, twin_rows())

    def test_dropped_submit_reply_resubmits_exactly_once(self, tmp_path, twin_rows):
        plan = FaultPlan(events=(
            FaultEvent(kind="drop", round=0, segment=0, phase="queued"),
        ))
        service = make_service(tmp_path, plan).start()
        try:
            client = ServiceClient(service.socket_path)
            with pytest.raises(ServiceUnavailableError, match="submit_key"):
                client.submit(chaos_spec(0), submit_key="once")
            retry = client.submit(chaos_spec(0), submit_key="once")
            assert retry["duplicate"] is True  # admitted exactly once
            view = client.wait(retry["job"], timeout=120)
            assert view["state"] == "done"
            assert view["result"] == twin_rows()[0]
            assert len(client.ls()) == 1
        finally:
            service.stop()

    def test_server_crash_at_admission_keeps_the_job(self, tmp_path, twin_rows):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", round=0, segment=0, phase="queued"),
        ))
        service = make_service(tmp_path, plan, fsync=True).start()
        with pytest.raises(ServiceUnavailableError):
            ServiceClient(service.socket_path).submit(
                chaos_spec(0), submit_key="k"
            )
        service.join()
        assert service.crashed

        recovered = make_service(tmp_path, None).start()
        try:
            client = ServiceClient(recovered.socket_path)
            # The journal committed the admission before the crash: the
            # job exists, and the idempotent resubmission proves it.
            assert len(client.ls()) == 1
            again = client.submit(chaos_spec(0), submit_key="k")
            assert again["duplicate"] is True
            view = client.wait(again["job"], timeout=120)
            assert view["state"] == "done"
            assert view["result"] == twin_rows()[0]
        finally:
            recovered.stop()

    def test_retry_budget_exhaustion_is_typed_terminal(self, tmp_path):
        # Crash the worker after its first checkpoint of attempts 0, 1 and
        # 2; with max_retries=2 the third crash exhausts the budget.
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="crash", round=attempt, segment=0, phase="running")
            for attempt in range(3)
        ))
        service = make_service(tmp_path, plan).start()
        try:
            client = ServiceClient(service.socket_path)
            job_id = client.submit(
                chaos_spec(0, rounds=200), max_retries=2, checkpoint_every=10
            )["job"]
            view = client.wait(job_id, timeout=120)
            assert view["state"] == "failed"
            assert view["error_type"] == "JobFailedError"
            assert view["attempts"] == 3
            message = view["error_message"]
            assert "max_retries=2" in message       # names the knob
            assert "service logs" in message        # names the next step
            log_text = client.logs(job_id)
            assert log_text.count("retry") >= 2     # each retry was recorded
        finally:
            service.stop()

    def test_attempts_resume_from_checkpoints_not_stale_scopes(self, tmp_path, twin_rows):
        """A twice-crashed job still produces the bit-identical row: every
        resume went through a fresh packet-id scope + checkpoint restore."""
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="crash", round=attempt, segment=0, phase="running")
            for attempt in range(2)
        ))
        views = run_under_plan(tmp_path, plan, rounds=60)
        assert views[0]["state"] == "done"
        assert views[0]["attempts"] == 2
        assert views[0]["result"] == twin_rows()[0]
