"""Unit and property tests for excess tracking (Definition 2.2, Lemma 2.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.excess import ExcessTracker, excess_brute_force


class TestExcessTracker:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExcessTracker(0, 0.5)
        with pytest.raises(ValueError):
            ExcessTracker(4, -0.1)

    def test_starts_at_zero(self):
        tracker = ExcessTracker(4, 0.5)
        assert tracker.max_excess() == 0
        assert all(tracker.excess(v) == 0 for v in range(4))

    def test_single_burst_decays_at_rate_rho(self):
        tracker = ExcessTracker(1, rho=0.5)
        tracker.observe_round({0: 3})
        # xi = max(0 + 3 - 0.5, 0) = 2.5
        assert tracker.excess(0) == pytest.approx(2.5)
        tracker.observe_round({})
        assert tracker.excess(0) == pytest.approx(2.0)
        tracker.observe_round({})
        assert tracker.excess(0) == pytest.approx(1.5)

    def test_excess_never_negative(self):
        tracker = ExcessTracker(1, rho=1.0)
        for _ in range(10):
            tracker.observe_round({})
        assert tracker.excess(0) == 0.0

    def test_steady_rate_rho_keeps_excess_at_zero(self):
        tracker = ExcessTracker(1, rho=1.0)
        for _ in range(20):
            tracker.observe_round({0: 1})
        assert tracker.excess(0) == pytest.approx(0.0)

    def test_previous_excess(self):
        tracker = ExcessTracker(1, rho=0.0)
        tracker.observe_round({0: 2})
        tracker.observe_round({0: 1})
        assert tracker.previous_excess(0) == pytest.approx(2.0)
        assert tracker.excess(0) == pytest.approx(3.0)

    def test_snapshot_is_a_copy(self):
        tracker = ExcessTracker(2, rho=0.5)
        snapshot = tracker.snapshot()
        snapshot[0] = 99
        assert tracker.excess(0) == 0.0

    def test_lemma_2_3_part_2_injection_bound(self):
        """N_{t}(v) <= xi_t(v) - xi_{t-1}(v) + rho for every observed round."""
        rho = 0.75
        tracker = ExcessTracker(1, rho=rho)
        injections = [3, 0, 1, 0, 0, 2, 1, 1, 0, 4]
        for count in injections:
            tracker.observe_round({0: count})
            lhs = count
            rhs = tracker.excess(0) - tracker.previous_excess(0) + rho
            assert lhs <= rhs + 1e-9


class TestBruteForceAgreement:
    def test_matches_on_hand_example(self):
        rounds = [{0: 2}, {0: 0}, {0: 3}, {0: 1}]
        rho = 1.0
        tracker = ExcessTracker(1, rho=rho)
        for crossings in rounds:
            tracker.observe_round(crossings)
        assert tracker.excess(0) == pytest.approx(
            excess_brute_force(rounds, 0, rho)
        )

    def test_empty_history(self):
        assert excess_brute_force([], 0, 0.5) == 0.0

    @settings(max_examples=200, deadline=None)
    @given(
        rho=st.floats(min_value=0.0, max_value=1.0),
        counts=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30),
    )
    def test_incremental_equals_definition(self, rho, counts):
        """The leaky-bucket recurrence equals the max-over-intervals definition."""
        rounds = [{0: c} for c in counts]
        tracker = ExcessTracker(1, rho=rho)
        for crossings in rounds:
            tracker.observe_round(crossings)
        expected = excess_brute_force(rounds, 0, rho)
        assert tracker.excess(0) == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(
        rho=st.floats(min_value=0.0, max_value=1.0),
        counts=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30),
    )
    def test_lemma_2_3_part_2_holds_for_random_histories(self, rho, counts):
        tracker = ExcessTracker(1, rho=rho)
        for count in counts:
            tracker.observe_round({0: count})
            assert count <= tracker.excess(0) - tracker.previous_excess(0) + rho + 1e-9
