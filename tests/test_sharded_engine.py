"""Unit and protocol tests for the sharded execution layer.

The bit-identical differential matrix lives in
``test_sharded_differential.py``; this file covers the pieces around it: the
segment planner, the segment-filtered adversary, the typed error family, the
process transport, Session/CLI integration, and the run_many error fix.
"""

from __future__ import annotations

import pytest

from repro.adversary.segmented import SegmentFilteredAdversary
from repro.api import (
    PreparedRun,
    RunPolicy,
    Scenario,
    ScenarioSpec,
    Session,
    SpecError,
)
from repro.api.session import build_topology
from repro.core.packet import packet_id_scope
from repro.core.pts import PeakToSink
from repro.network.errors import (
    RecoveryExhaustedError,
    ReproError,
    ShardingError,
    UnshardableScenarioError,
    WorkerFailedError,
)
from repro.network.faults import FaultEvent, FaultPlan
from repro.network.sharded import (
    ExecutionPolicy,
    plan_segments,
    run_sharded,
)
from repro.network.topology import LineTopology


def _line_spec(**policy) -> ScenarioSpec:
    scenario = (
        Scenario.line(16)
        .algorithm("ppts")
        .adversary("bounded", rho=0.8, sigma=3.0, rounds=25, num_destinations=3)
    )
    scenario.policy(seed=7, **policy)
    return scenario.build()


# ---------------------------------------------------------------------------
# Segment planning
# ---------------------------------------------------------------------------


def test_plan_segments_balanced_and_contiguous():
    segments = plan_segments(10, 3)
    assert segments == [(0, 3), (4, 6), (7, 9)]
    widths = [hi - lo + 1 for lo, hi in segments]
    assert max(widths) - min(widths) <= 1


def test_plan_segments_clamps_to_line_length():
    assert plan_segments(4, 9) == [(0, 0), (1, 1), (2, 2), (3, 3)]
    assert plan_segments(5, 1) == [(0, 4)]


def test_plan_segments_covers_every_node_exactly_once():
    for n in (2, 5, 16, 31):
        for k in (1, 2, 3, 7, n, n + 3):
            segments = plan_segments(n, k)
            covered = [node for lo, hi in segments for node in range(lo, hi + 1)]
            assert covered == list(range(n))


def test_execution_policy_validation():
    with pytest.raises(UnshardableScenarioError):
        ExecutionPolicy(shards=0)
    with pytest.raises(UnshardableScenarioError):
        ExecutionPolicy(shards=2, transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# Segment-filtered adversaries
# ---------------------------------------------------------------------------


def test_segment_filter_preserves_global_packet_ids():
    """The union of per-segment injections is exactly the full schedule —
    same packets, same ids, each claimed by exactly one segment."""
    spec = _line_spec()
    segments = plan_segments(16, 3)

    def materialise(lo=None, hi=None):
        with packet_id_scope():
            session = Session(cache_topologies=False)
            prepared = session.prepare(spec)
            adversary = prepared.adversary
            if lo is not None:
                adversary = SegmentFilteredAdversary(adversary, lo, hi)
            return [
                (injection.packet_id, injection.round, injection.source,
                 injection.destination)
                for t in range(prepared.adversary.horizon)
                for injection in adversary.injections_for_round(t)
            ]

    full = materialise()
    per_segment = [materialise(lo, hi) for lo, hi in segments]
    combined = sorted(record for part in per_segment for record in part)
    assert combined == sorted(full)
    for (lo, hi), part in zip(segments, per_segment):
        assert all(lo <= source <= hi for _id, _t, source, _dest in part)


def test_segment_filter_delegates_envelope_and_cursor():
    spec = _line_spec(history="streaming")
    scenario = Scenario.from_spec(spec)
    payload = spec.to_dict()
    payload["adversary"]["params"]["stream"] = True
    spec = ScenarioSpec.from_dict(payload)
    with packet_id_scope():
        prepared = Session(cache_topologies=False).prepare(spec)
        wrapped = SegmentFilteredAdversary(prepared.adversary, 0, 7)
        assert wrapped.rho == prepared.adversary.rho
        assert wrapped.sigma == prepared.adversary.sigma
        assert wrapped.horizon == prepared.adversary.horizon
        assert wrapped.checkpoint_kind == "StreamingAdversary"
        wrapped.injections_for_round(0)
        assert wrapped.cursor() == prepared.adversary.cursor()


def test_segment_filter_rejects_adaptive_adversaries():
    topology = LineTopology(16)
    from repro.api import ADVERSARIES

    adaptive = ADVERSARIES.get("hotspot")(
        topology, rho=0.5, sigma=2.0, rounds=10, seed=1
    )
    with pytest.raises(UnshardableScenarioError):
        SegmentFilteredAdversary(adaptive, 0, 7)


# ---------------------------------------------------------------------------
# Typed error family
# ---------------------------------------------------------------------------


def test_sharding_errors_are_repro_errors():
    assert issubclass(ShardingError, ReproError)
    assert issubclass(UnshardableScenarioError, ShardingError)


def test_adaptive_adversary_scenario_is_refused():
    scenario = (
        Scenario.line(16)
        .algorithm("greedy")
        .adversary("hotspot", rho=0.5, sigma=2.0, rounds=10)
        .policy(seed=1)
    )
    with pytest.raises(UnshardableScenarioError):
        run_sharded(scenario.build(), shards=2, transport="local")


def test_tree_topology_is_refused():
    scenario = (
        Scenario.tree("binary", depth=3)
        .algorithm("tree-ppts")
        .adversary("bounded", rho=0.5, sigma=2.0, rounds=10)
        .policy(seed=1, shards=2)
    )
    with pytest.raises(UnshardableScenarioError):
        Session().run(scenario.build())


def test_algorithm_without_segment_selection_is_refused(monkeypatch):
    monkeypatch.setattr(PeakToSink, "supports_sharding", False)
    scenario = (
        Scenario.line(16)
        .algorithm("pts")
        .adversary("single", rho=1.0, sigma=2.0, rounds=10)
        .policy(seed=1)
    )
    with pytest.raises(UnshardableScenarioError):
        run_sharded(scenario.build(), shards=2, transport="local")


def test_prepared_run_with_shards_is_refused():
    spec = _line_spec()
    with packet_id_scope():
        prepared_ingredients = Session(cache_topologies=False).prepare(spec)
    prepared = PreparedRun(
        topology=prepared_ingredients.topology,
        algorithm=prepared_ingredients.algorithm,
        adversary=prepared_ingredients.adversary,
        policy=RunPolicy(shards=2, seed=7),
    )
    with pytest.raises(UnshardableScenarioError):
        Session().run(prepared)


def test_run_policy_shards_validation():
    with pytest.raises(SpecError):
        RunPolicy(shards=0)
    with pytest.raises(SpecError):
        RunPolicy(shards=True)
    assert RunPolicy(shards=None).shards is None
    assert RunPolicy(shards=4).shards == 4
    round_tripped = RunPolicy.from_dict(RunPolicy(shards=4).to_dict())
    assert round_tripped == RunPolicy(shards=4)


def test_run_many_use_processes_raises_typed_error_for_live_items():
    """Satellite fix: a clear, typed (ReproError) message — never a bare
    ValueError — when live PreparedRun items meet use_processes=True."""
    spec = _line_spec()
    with packet_id_scope():
        ingredients = Session(cache_topologies=False).prepare(spec)
    prepared = PreparedRun(
        topology=ingredients.topology,
        algorithm=ingredients.algorithm,
        adversary=ingredients.adversary,
    )
    with pytest.raises(SpecError) as excinfo:
        Session().run_many([spec, prepared], use_processes=True)
    assert not isinstance(excinfo.value, ValueError)
    assert isinstance(excinfo.value, ReproError)
    assert "ScenarioSpec" in str(excinfo.value)
    assert "item 1" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Process transport
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "algorithm, params, adversary, adversary_params, rho",
    [
        ("pts", {}, "single", {}, 1.0),
        ("ppts", {}, "bounded", {"num_destinations": 3}, 0.8),
        ("hpts", {"levels": 2}, "bounded", {"num_destinations": 3}, 0.5),
        ("local", {"locality": 2}, "single", {}, 0.8),
        ("downhill", {}, "single", {}, 0.8),
        ("greedy", {}, "bounded", {"num_destinations": 3}, 0.8),
    ],
)
def test_process_transport_matches_single_process(
    algorithm, params, adversary, adversary_params, rho
):
    scenario = (
        Scenario.line(16)
        .algorithm(algorithm, **params)
        .adversary(adversary, rho=rho, sigma=3.0, rounds=25, **adversary_params)
        .policy(seed=29)
    )
    spec = scenario.build()
    baseline = Session().run(spec).result
    sharded, _ = run_sharded(spec, shards=2, transport="processes")
    assert sharded == baseline


def test_worker_build_errors_propagate_across_processes():
    scenario = (
        Scenario.line(16)
        .algorithm("greedy")
        .adversary("hotspot", rho=0.5, sigma=2.0, rounds=10)
        .policy(seed=1)
    )
    with pytest.raises(UnshardableScenarioError):
        run_sharded(scenario.build(), shards=2, transport="processes")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_simulate_with_shards(capsys):
    from repro.cli import main

    exit_code = main(
        [
            "simulate", "--algorithm", "pts", "--nodes", "24",
            "--rho", "1.0", "--sigma", "2.0", "--rounds", "40",
            "--seed", "3", "--shards", "2", "--json",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert '"max_occupancy"' in captured.out


def test_cli_shards_on_tree_spec_exits_2(tmp_path, capsys):
    from repro.cli import main

    spec = (
        Scenario.tree("binary", depth=3)
        .algorithm("tree-ppts")
        .adversary("bounded", rho=0.5, sigma=2.0, rounds=10)
        .policy(seed=1)
        .build()
    )
    spec_path = tmp_path / "tree.json"
    spec_path.write_text(spec.to_json())
    exit_code = main(
        ["simulate", "--spec", str(spec_path), "--shards", "2"]
    )
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "error:" in captured.err


def test_cli_shards_matches_unsharded_row(capsys):
    import json

    from repro.cli import main

    argv = [
        "simulate", "--algorithm", "ppts", "--nodes", "20",
        "--destinations", "4", "--rho", "0.8", "--sigma", "2.0",
        "--rounds", "30", "--seed", "5", "--json",
    ]
    main(argv)
    single_row = json.loads(capsys.readouterr().out)
    main(argv + ["--shards", "3"])
    sharded_row = json.loads(capsys.readouterr().out)
    # Sharded rows additionally surface the supervisor's recovery telemetry
    # (a fault-free run reports zero restarts); the result itself must stay
    # bit-identical to the single-process row.
    assert sharded_row.pop("recovery") == {
        "restarts": 0, "recovery_time_s": None
    }
    assert sharded_row == single_row
    assert "recovery" not in single_row


# ---------------------------------------------------------------------------
# Coordinator bookkeeping
# ---------------------------------------------------------------------------


def test_extras_carry_segments_and_states():
    spec = _line_spec()
    result, extras = run_sharded(spec, shards=3, transport="local")
    assert extras["segments"] == plan_segments(16, 3)
    assert len(extras["algorithm_states"]) == 3
    observed = set()
    for state in extras["algorithm_states"]:
        observed.update(state["observed"])
    assert observed  # PPTS discovered destinations, globally non-empty
    assert result.packets_injected > 0


def test_topology_is_built_once_per_worker_not_shared():
    """Workers must not share mutable ingredients: a spec-described topology
    builds fine standalone (sanity for the coordinator's pre-check)."""
    spec = _line_spec()
    topology = build_topology(spec.topology)
    assert isinstance(topology, LineTopology)
    assert topology.num_nodes == 16


# ---------------------------------------------------------------------------
# Supervision: heartbeats, retries, recovery on real worker processes
# ---------------------------------------------------------------------------


def _crash_plan(round_number: int, segment: int, phase: str = "begin") -> FaultPlan:
    return FaultPlan(events=(
        FaultEvent(kind="crash", round=round_number, segment=segment,
                   phase=phase),
    ))


def test_execution_policy_supervisor_validation():
    with pytest.raises(UnshardableScenarioError):
        ExecutionPolicy(shards=2, max_retries=-1)
    with pytest.raises(UnshardableScenarioError):
        ExecutionPolicy(shards=2, retry_backoff=-0.5)
    with pytest.raises(UnshardableScenarioError):
        ExecutionPolicy(shards=2, faults={"events": []})


def test_recovery_error_hierarchy():
    assert issubclass(WorkerFailedError, ShardingError)
    assert issubclass(RecoveryExhaustedError, ShardingError)
    assert issubclass(WorkerFailedError, ReproError)
    error = WorkerFailedError("boom", segment=2, round_number=5, phase="begin")
    assert (error.segment, error.round_number, error.phase) == (2, 5, "begin")


def test_process_worker_hard_crash_recovers():
    """A real worker process dying mid-run (os._exit) is detected, respawned
    and the run still matches its fault-free twin."""
    spec = _line_spec(shards=3, recovery="restart", max_worker_restarts=2)
    baseline, _ = run_sharded(spec, transport="local")
    recovered, extras = run_sharded(
        spec, transport="processes", faults=_crash_plan(9, 1, "finish")
    )
    assert recovered == baseline
    assert extras["recovery"]["restarts"] == 1


def test_heartbeat_timeout_detects_hung_worker():
    """A worker stalled well past heartbeat_timeout is declared failed and
    replaced; the injected delay fires only once, so the retry completes."""
    spec = _line_spec(shards=2, recovery="restart", max_worker_restarts=2,
                      heartbeat_timeout=0.25)
    baseline, _ = run_sharded(spec, transport="local")
    slow = FaultPlan(events=(
        FaultEvent(kind="slow", round=5, segment=1, phase="begin", delay=5.0),
    ))
    recovered, extras = run_sharded(spec, transport="processes", faults=slow)
    assert recovered == baseline
    assert extras["recovery"]["restarts"] == 1


def test_dropped_sends_are_retried_without_recovery():
    """Simulated transport loss within the retry budget is absorbed by
    backoff alone — no worker restart, identical results."""
    spec = _line_spec(shards=3, recovery="restart", max_worker_restarts=2)
    baseline, _ = run_sharded(spec, transport="local")
    drops = FaultPlan(events=(
        FaultEvent(kind="drop", round=4, segment=0, phase="select", count=2),
    ))
    recovered, extras = run_sharded(spec, transport="local", faults=drops)
    assert recovered == baseline
    assert extras["recovery"]["restarts"] == 0


def test_drop_exhaustion_escalates_to_recovery():
    """More consecutive losses than max_retries marks the worker failed;
    the supervisor then recovers instead of looping forever.  count=5 burns
    the full retry budget once (3 attempts), escalates, and leaves the
    replayed superstep enough tokens to fail twice more before the retry
    succeeds — one restart, no exhaustion."""
    spec = _line_spec(shards=3, recovery="restart", max_worker_restarts=2)
    baseline, _ = run_sharded(spec, transport="local")
    drops = FaultPlan(events=(
        FaultEvent(kind="drop", round=4, segment=0, phase="select", count=5),
    ))
    recovered, extras = run_sharded(spec, transport="local", faults=drops)
    assert recovered == baseline
    assert extras["recovery"]["restarts"] == 1


def test_recovery_extras_report_wall_clock_time():
    """An injected clock makes recovery_time_s observable and deterministic
    to assert against (monotonic fake, no real time reads)."""
    ticks = iter(range(100))
    spec = _line_spec(shards=2, recovery="restart", max_worker_restarts=2)
    baseline, _ = run_sharded(spec, transport="local")
    recovered, extras = run_sharded(
        spec, transport="local", faults=_crash_plan(6, 0),
        clock=lambda: float(next(ticks)),
    )
    assert recovered == baseline
    assert extras["recovery"]["restarts"] == 1
    assert extras["recovery"]["recovery_time_s"] == 1.0
    # Without a clock the metric is absent-but-present: explicitly None.
    _, no_clock_extras = run_sharded(
        spec, transport="local", faults=_crash_plan(6, 0)
    )
    assert no_clock_extras["recovery"]["recovery_time_s"] is None


def test_session_threads_faults_and_recovers(tmp_path):
    """Session.run(spec, faults=...) reaches the sharded supervisor."""
    spec = _line_spec(shards=3, recovery="restart", max_worker_restarts=2)
    baseline = Session().run(spec)
    recovered = Session().run(spec, faults=_crash_plan(7, 2))
    assert recovered.result == baseline.result
    assert recovered.bound == baseline.bound


def test_session_rejects_faults_without_sharding():
    spec = _line_spec()
    with pytest.raises(SpecError, match="shards"):
        Session().run(spec, faults=_crash_plan(1, 0))


def test_cli_recovery_flags_and_fault_plan(tmp_path, capsys):
    import json

    from repro.cli import main

    spec = _line_spec()
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())
    base_argv = [
        "simulate", "--spec", str(spec_path), "--shards", "3", "--json",
    ]
    assert main(base_argv) in (0, 1)
    baseline_row = json.loads(capsys.readouterr().out)

    plan_path = tmp_path / "plan.json"
    plan_path.write_text(_crash_plan(8, 1, "select").to_json())
    chaos_argv = base_argv + [
        "--recovery", "restart", "--max-worker-restarts", "2",
        "--heartbeat-timeout", "30", "--faults", str(plan_path),
    ]
    assert main(chaos_argv) in (0, 1)
    chaos_row = json.loads(capsys.readouterr().out)
    # The recovery telemetry is exactly what distinguishes the two runs —
    # one absorbed restart — while the result row stays bit-identical.
    assert baseline_row.pop("recovery")["restarts"] == 0
    assert chaos_row.pop("recovery")["restarts"] == 1
    assert chaos_row == baseline_row


def test_cli_exhausted_recovery_budget_exits_2(tmp_path, capsys):
    from repro.cli import main

    spec = _line_spec()
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())
    plan_path = tmp_path / "plan.json"
    plan = FaultPlan(events=(
        FaultEvent(kind="crash", round=3, segment=0),
        FaultEvent(kind="crash", round=6, segment=1),
    ))
    plan_path.write_text(plan.to_json())
    exit_code = main([
        "simulate", "--spec", str(spec_path), "--shards", "3",
        "--recovery", "restart", "--max-worker-restarts", "1",
        "--faults", str(plan_path),
    ])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "recovery budget exhausted" in captured.err


def test_cli_faults_with_resume_is_refused(tmp_path, capsys):
    from repro.cli import main

    plan_path = tmp_path / "plan.json"
    plan_path.write_text(_crash_plan(1, 0).to_json())
    exit_code = main([
        "simulate", "--resume", str(tmp_path / "missing.ckpt"),
        "--faults", str(plan_path),
    ])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "--resume" in captured.err
