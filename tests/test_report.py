"""Unit tests for the text report builder (repro.analysis.report)."""

from __future__ import annotations

from repro.adversary.stress import round_robin_destination_stress
from repro.analysis.report import build_report, report_sections
from repro.baselines.greedy import GreedyForwarding
from repro.core.ppts import ParallelPeakToSink
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology


def _run(line, algorithm, pattern, **kwargs):
    simulator = Simulator(line, algorithm, pattern, **kwargs)
    result = simulator.run()
    return simulator, result


class TestReportSections:
    def test_sections_present(self):
        line = LineTopology(24)
        pattern = round_robin_destination_stress(line, 1.0, 2, 80, 4)
        simulator, result = _run(line, ParallelPeakToSink(line), pattern)
        sections = report_sections(simulator, result, sigma=2)
        assert {"summary", "hotspots", "latency", "latency_by_distance"} <= set(sections)
        assert "max occupancy" in sections["summary"]
        summary_lines = {
            line.split(":")[0].strip(): line.split(":", 1)[1].strip()
            for line in sections["summary"].splitlines()
            if ":" in line
        }
        assert summary_lines["within bound"] == "yes"

    def test_trajectory_only_with_history(self):
        line = LineTopology(24)
        pattern = round_robin_destination_stress(line, 1.0, 2, 80, 4)
        without_history = report_sections(
            *_run(line, ParallelPeakToSink(line), pattern), sigma=2
        )
        assert "trajectory" not in without_history
        with_history = report_sections(
            *_run(line, ParallelPeakToSink(line), pattern, record_history=True),
            sigma=2,
        )
        assert "trajectory" in with_history
        assert "peak=" in with_history["trajectory"]

    def test_no_bound_when_sigma_unknown(self):
        line = LineTopology(16)
        pattern = round_robin_destination_stress(line, 1.0, 1, 40, 2)
        sections = report_sections(*_run(line, GreedyForwarding(line), pattern))
        summary_lines = {
            line.split(":")[0].strip(): line.split(":", 1)[1].strip()
            for line in sections["summary"].splitlines()
            if ":" in line
        }
        assert summary_lines["bound"] == "-"


class TestBuildReport:
    def test_full_report_structure(self):
        line = LineTopology(24)
        pattern = round_robin_destination_stress(line, 1.0, 2, 80, 4)
        simulator, result = _run(
            line, ParallelPeakToSink(line), pattern, record_history=True
        )
        report = build_report(simulator, result, sigma=2, title="PPTS run")
        lines = report.splitlines()
        assert lines[0] == "PPTS run"
        assert lines[1].startswith("=")
        assert "Most loaded buffers" in report
        assert "Latency by route length" in report
        assert report.endswith("\n")

    def test_report_for_fully_draining_algorithm(self):
        line = LineTopology(16)
        pattern = round_robin_destination_stress(line, 1.0, 1, 50, 3)
        simulator, result = _run(line, GreedyForwarding(line), pattern)
        report = build_report(simulator, result)
        assert "drained" in report
        assert "undelivered  : 0" in report or "packets undelivered : 0" in report
