"""Differential oracle: the batch kernel against the per-round object engine.

Every scenario here runs twice from identical seeds — once on
:class:`repro.network.simulator.Simulator` (the oracle) and once on
:class:`repro.network.batch.BatchSimulator` — and the results must be
*bit-identical*: the full :class:`SimulationResult` (including per-round
records), the retained packet table (insertion order and every field), and
the streamed injection log.  The matrix covers the whole vectorized family
({PTS, local, downhill, greedy} x {trickle, bounded, explicit} x three
history modes) on both kernel backends, plus the edges that historically
break lockstep engines: round-0 injections, drain tails, the minimal line,
and the error paths (invalid routes, wrong destinations).
"""

from __future__ import annotations

import pytest

from repro.adversary.generators import (
    build_explicit_adversary,
    random_line_adversary,
    trickle_adversary,
)
from repro.baselines.greedy import GreedyForwarding
from repro.baselines.policies import ALL_POLICIES
from repro.core.local import DownhillForwarding, LocalThresholdForwarding
from repro.core.packet import packet_id_scope
from repro.core.pseudobuffer import QueueDiscipline
from repro.core.pts import PeakToSink
from repro.network.batch import BatchSimulator
from repro.network.errors import (
    SchedulingError,
    TopologyError,
    UnbatchableScenarioError,
)
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology

N = 16
ROUNDS = 150
SEED = 23

BACKENDS = ("numpy", "python")


# -- scenario construction ---------------------------------------------------------


def _make_algorithm(name, topology):
    n = topology.num_nodes
    if name == "pts":
        destination = n if topology.allow_virtual_sink else n - 1
        return PeakToSink(topology, destination=destination)
    if name == "local":
        return LocalThresholdForwarding(topology, 2, destination=n - 1)
    if name == "downhill":
        return DownhillForwarding(topology, destination=n - 1)
    return GreedyForwarding(topology)


def _make_topology(name, n=N, adversary="trickle"):
    # PTS and greedy exercise the virtual sink; local and downhill the
    # ordinary last-node destination.  The bounded generator always targets
    # node n-1, so its single-destination runs use a sink-free line.
    with_sink = name in ("pts", "greedy") and adversary != "bounded"
    return LineTopology(n, allow_virtual_sink=with_sink)


def _destinations(name, topology):
    n = topology.num_nodes
    if name == "pts":
        return [n if topology.allow_virtual_sink else n - 1]
    if name == "greedy":
        # Multi-destination: interior nodes plus the virtual sink.
        return [n // 3, (2 * n) // 3, n]
    return [n - 1]


_EXPLICIT_GREEDY = [
    # Round-0 burst, interleaved destinations, repeated sources.
    (0, 0, 5), (0, 0, 10), (0, 3, 5), (1, 2, 16), (1, 4, 10),
    (3, 0, 16), (3, 1, 5), (3, 3, 10), (3, 3, 16), (8, 9, 10),
    (8, 14, 16), (20, 0, 16), (20, 5, 10), (21, 6, 16), (40, 15, 16),
]


def _make_adversary(kind, name, topology, rounds=ROUNDS, seed=SEED):
    destinations = _destinations(name, topology)
    if kind == "trickle":
        return trickle_adversary(
            topology, 0.9, 2.0, rounds, destinations=destinations, seed=seed
        )
    if kind == "bounded":
        return random_line_adversary(
            topology, 0.8, 3.0, rounds, 1, seed=seed
        )
    routes = (
        _EXPLICIT_GREEDY
        if name == "greedy"
        else [
            (t, s, destinations[0])
            for (t, s, _w) in _EXPLICIT_GREEDY
            if s < destinations[0]
        ]
    )
    return build_explicit_adversary(
        topology, rho=1.0, sigma=4.0, rounds=rounds, routes=routes
    )


HISTORY_MODES = {
    "summary": {},
    "full": {"record_history": True, "record_occupancy_vectors": True},
    "streaming": {"history": "streaming"},
}


def _packet_table(simulator):
    """Insertion order and every observable field of the packet table."""
    return [
        (
            pid,
            packet.source,
            packet.destination,
            packet.injected_round,
            packet.location,
            packet.state.value,
            packet.accepted_round,
            packet.delivered_round,
            packet.hops,
        )
        for pid, packet in simulator.packets.items()
    ]


def _stream_log(simulator):
    store = simulator.packet_store
    if store is None:
        return None
    return (
        tuple(store.rounds),
        tuple(store.sources),
        tuple(store.destinations),
        tuple(store.packet_ids),
    )


def _run_delta(make, sim_kwargs, run_kwargs):
    with packet_id_scope():
        simulator = Simulator(*make(), **sim_kwargs)
        result = simulator.run(**run_kwargs)
    return simulator, result


def _run_batch(make, backend, sim_kwargs, run_kwargs, batch_rounds=64):
    with packet_id_scope():
        simulator = BatchSimulator(
            *make(), backend=backend, batch_rounds=batch_rounds, **sim_kwargs
        )
        result = simulator.run(**run_kwargs)
    return simulator, result


def _assert_identical(make, backend, sim_kwargs=None, run_kwargs=None, **batch_opts):
    sim_kwargs = dict(sim_kwargs or {})
    run_kwargs = dict(run_kwargs or {})
    oracle_sim, oracle = _run_delta(make, sim_kwargs, run_kwargs)
    batch_sim, result = _run_batch(make, backend, sim_kwargs, run_kwargs, **batch_opts)
    assert result == oracle
    assert _packet_table(batch_sim) == _packet_table(oracle_sim)
    assert _stream_log(batch_sim) == _stream_log(oracle_sim)
    return oracle


# -- the full matrix ---------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("history", sorted(HISTORY_MODES))
@pytest.mark.parametrize("adversary", ("trickle", "bounded", "explicit"))
@pytest.mark.parametrize("algorithm", ("pts", "local", "downhill", "greedy"))
def test_matrix_bit_identical(algorithm, adversary, history, backend):
    def make():
        topology = _make_topology(algorithm, adversary=adversary)
        return (
            topology,
            _make_algorithm(algorithm, topology),
            _make_adversary(adversary, algorithm, topology),
        )

    result = _assert_identical(
        make, backend, sim_kwargs=HISTORY_MODES[history]
    )
    assert result.packets_injected > 0


# -- edges -------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ("pts", "local", "downhill", "greedy"))
def test_minimal_line(algorithm, backend):
    """n=2 — the smallest LineTopology — with a round-0 burst."""

    def make():
        topology = _make_topology(algorithm, n=2)
        destination = _destinations(algorithm, topology)[-1]
        adversary = build_explicit_adversary(
            topology,
            rho=1.0,
            sigma=3.0,
            rounds=6,
            routes=[(0, 0, destination), (0, 0, destination),
                    (2, 0, destination), (5, 0, destination)],
        )
        return topology, _make_algorithm(algorithm, topology), adversary

    _assert_identical(make, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ("pts", "local", "downhill", "greedy"))
def test_no_drain_leaves_identical_flight_state(algorithm, backend):
    """drain=False: undelivered packets, locations and counters must agree."""

    def make():
        topology = _make_topology(algorithm)
        return (
            topology,
            _make_algorithm(algorithm, topology),
            _make_adversary("trickle", algorithm, topology),
        )

    result = _assert_identical(make, backend, run_kwargs={"drain": False})
    assert result.packets_undelivered > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_pattern(backend):
    def make():
        topology = LineTopology(N)
        adversary = build_explicit_adversary(
            topology, rho=1.0, sigma=1.0, rounds=10, routes=[]
        )
        return topology, PeakToSink(topology), adversary

    result = _assert_identical(make, backend)
    assert result.packets_injected == 0
    assert result.drained


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_window_size_does_not_change_results(backend):
    def make():
        topology = _make_topology("pts")
        return (
            topology,
            _make_algorithm("pts", topology),
            _make_adversary("trickle", "pts", topology),
        )

    baseline = _run_batch(make, backend, {}, {}, batch_rounds=64)[1]
    for batch_rounds in (1, 7, 1024):
        assert (
            _run_batch(make, backend, {}, {}, batch_rounds=batch_rounds)[1]
            == baseline
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_variant_knobs(backend):
    """Work-conserving PTS, FIFO PTS, threshold-1 local, locality-0 local."""

    def pts_wc():
        topology = LineTopology(N, allow_virtual_sink=True)
        algorithm = PeakToSink(topology, destination=N, work_conserving=True)
        return topology, algorithm, _make_adversary("trickle", "pts", topology)

    def pts_fifo():
        topology = LineTopology(N, allow_virtual_sink=True)
        algorithm = PeakToSink(
            topology, destination=N, discipline=QueueDiscipline.FIFO
        )
        return topology, algorithm, _make_adversary("trickle", "pts", topology)

    def local_t1():
        topology = LineTopology(N)
        algorithm = LocalThresholdForwarding(
            topology, 3, destination=N - 1, threshold=1
        )
        return topology, algorithm, _make_adversary("trickle", "local", topology)

    def local_r0():
        topology = LineTopology(N)
        algorithm = LocalThresholdForwarding(topology, 0, destination=N - 1)
        return topology, algorithm, _make_adversary("trickle", "local", topology)

    for make in (pts_wc, pts_fifo, local_t1, local_r0):
        _assert_identical(make, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("policy", sorted(ALL_POLICIES, key=lambda p: p.name),
                         ids=lambda p: p.name)
def test_greedy_policies(policy, backend):
    def make():
        topology = LineTopology(N, allow_virtual_sink=True)
        algorithm = GreedyForwarding(topology, policy)
        return topology, algorithm, _make_adversary("trickle", "greedy", topology)

    _assert_identical(make, backend)


# -- error-path parity -------------------------------------------------------------


def _raises_identically(make, exc_type, run_kwargs=None):
    run_kwargs = dict(run_kwargs or {})
    with packet_id_scope():
        oracle = Simulator(*make())
        with pytest.raises(exc_type) as delta_error:
            oracle.run(**run_kwargs)
    with packet_id_scope():
        batch = BatchSimulator(*make(), backend="python")
        with pytest.raises(exc_type) as batch_error:
            batch.run(**run_kwargs)
    assert str(batch_error.value) == str(delta_error.value)
    assert batch.packets.keys() == oracle.packets.keys()


def test_invalid_route_raises_identical_error():
    def make():
        topology = LineTopology(N)
        adversary = build_explicit_adversary(
            topology, rho=1.0, sigma=2.0, rounds=10,
            routes=[(0, 0, N - 1), (3, 7, 3)],  # round-3 route goes backward
        )
        return topology, PeakToSink(topology), adversary

    _raises_identically(make, TopologyError)


def test_wrong_destination_raises_identical_error():
    def make():
        topology = LineTopology(N)
        adversary = build_explicit_adversary(
            topology, rho=1.0, sigma=2.0, rounds=10,
            routes=[(0, 0, N - 1), (2, 1, N - 1), (2, 4, 8)],  # 8 != w
        )
        return topology, PeakToSink(topology), adversary

    _raises_identically(make, SchedulingError)


# -- refusal surface ---------------------------------------------------------------


def test_unbatchable_scenarios_refused_before_side_effects():
    topology = LineTopology(N)
    adversary = _make_adversary("trickle", "pts", LineTopology(N))
    from repro.core.hpts import HierarchicalPeakToSink

    with pytest.raises(UnbatchableScenarioError):
        BatchSimulator(
            topology,
            HierarchicalPeakToSink(LineTopology(16), levels=2, rho=0.4),
            adversary,
        )
