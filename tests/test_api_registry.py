"""Unit tests for the string-keyed registries (repro.api.registry)."""

from __future__ import annotations

import pytest

from repro.api import (
    ADVERSARIES,
    ALGORITHMS,
    TOPOLOGIES,
    Registry,
    RegistryError,
    Scenario,
    Session,
    SpecError,
)


class TestBuiltInRegistration:
    def test_seed_algorithms_registered(self):
        for name in ("pts", "ppts", "hpts", "local", "downhill", "greedy",
                     "tree-pts", "tree-ppts"):
            assert name in ALGORITHMS

    def test_seed_adversaries_registered(self):
        for name in ("burst", "round-robin", "nested", "hierarchy", "bounded",
                     "single", "bursty", "saturating", "convergecast",
                     "hotspot", "blocking", "lower-bound"):
            assert name in ADVERSARIES

    def test_seed_topologies_registered(self):
        for kind in ("line", "tree", "forest"):
            assert kind in TOPOLOGIES

    def test_aliases_resolve_to_canonical_entries(self):
        assert ADVERSARIES.get("stress") is ADVERSARIES.get("burst")
        assert ADVERSARIES.get("random") is ADVERSARIES.get("bounded")
        assert ADVERSARIES.get("round_robin") is ADVERSARIES.get("round-robin")
        assert ALGORITHMS.get("tree_ppts") is ALGORITHMS.get("tree-ppts")


class TestLookupErrors:
    def test_unknown_key_raises_registry_error_listing_known_keys(self):
        with pytest.raises(RegistryError) as excinfo:
            ALGORITHMS.get("magic")
        message = str(excinfo.value)
        assert "magic" in message
        assert "ppts" in message  # the error names the registered keys

    def test_registry_error_is_a_key_error(self):
        with pytest.raises(KeyError):
            TOPOLOGIES.get("torus")

    def test_unknown_names_surface_through_session(self):
        with pytest.raises(RegistryError):
            Session().run(
                Scenario.line(8).algorithm("nope").adversary("burst").build()
            )
        with pytest.raises(RegistryError):
            Session().run(
                Scenario.line(8).algorithm("pts").adversary("nope").build()
            )
        with pytest.raises(RegistryError):
            Session().run(
                Scenario.topology("torus", num_nodes=8)
                .algorithm("pts")
                .adversary("burst")
                .build()
            )


class TestCustomRegistration:
    def test_decorator_registration_and_replacement(self):
        registry = Registry("widget")

        @registry.register("alpha", aliases=("a",))
        def build_alpha():
            return "alpha-1"

        assert registry.get("a") is build_alpha
        assert registry.names() == ["alpha"]

        @registry.register("alpha")
        def build_alpha_v2():
            return "alpha-2"

        assert registry.get("alpha") is build_alpha_v2  # replaced, not duplicated
        assert len(registry) == 1

    def test_canonical_registration_overrides_same_named_alias(self):
        registry = Registry("widget")

        @registry.register("alpha", aliases=("a",))
        def build_alpha():
            return "alpha"

        @registry.register("a")
        def build_a():
            return "a"

        assert registry.get("a") is build_a  # the alias no longer shadows it
        assert registry.get("alpha") is build_alpha

    def test_custom_algorithm_is_runnable_from_a_spec(self):
        from repro.api import register_algorithm
        from repro.core.pts import PeakToSink

        @register_algorithm("test-pts-variant")
        def build_variant(topology, **params):
            return PeakToSink(topology, **params)

        try:
            report = (
                Scenario.line(16)
                .algorithm("test-pts-variant")
                .adversary("burst", rho=1.0, sigma=1, rounds=30)
                .run()
            )
            assert report.within_bound
        finally:
            ALGORITHMS._entries.pop("test-pts-variant", None)

    def test_bad_discipline_string_is_a_spec_error(self):
        with pytest.raises(SpecError):
            Session().run(
                Scenario.line(8)
                .algorithm("pts", discipline="SILLY")
                .adversary("burst", rounds=10)
                .build()
            )
