"""Unit tests for locality-limited forwarding (repro.core.local)."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.generators import single_destination_adversary
from repro.adversary.stress import pts_burst_stress
from repro.core.bounds import pts_upper_bound
from repro.core.local import DownhillForwarding, LocalThresholdForwarding
from repro.core.pts import PeakToSink
from repro.network.errors import ConfigurationError, SchedulingError
from repro.network.simulator import Simulator, run_simulation
from repro.network.topology import LineTopology


class TestConfiguration:
    def test_invalid_parameters(self):
        line = LineTopology(8)
        with pytest.raises(ConfigurationError):
            LocalThresholdForwarding(line, locality=-1)
        with pytest.raises(ConfigurationError):
            LocalThresholdForwarding(line, locality=2, threshold=0)
        with pytest.raises(ConfigurationError):
            LocalThresholdForwarding(line, locality=2, destination=0)

    def test_name_encodes_radius(self):
        line = LineTopology(8)
        assert LocalThresholdForwarding(line, locality=3).name == "Local-r3"

    def test_wrong_destination_rejected(self):
        line = LineTopology(8)
        algorithm = LocalThresholdForwarding(line, locality=2)
        pattern = InjectionPattern.from_tuples([(0, 0, 3)])
        with pytest.raises(SchedulingError):
            run_simulation(line, algorithm, pattern)

    def test_bound_only_claimed_for_global_view(self):
        line = LineTopology(8)
        assert LocalThresholdForwarding(line, locality=8).theoretical_bound(2) == 4
        assert LocalThresholdForwarding(line, locality=2).theoretical_bound(2) is None


class TestLocalThresholdBehaviour:
    def test_zero_locality_reacts_only_to_own_load(self):
        line = LineTopology(6)
        algorithm = LocalThresholdForwarding(line, locality=0)
        # Buffer 1 is bad, buffer 3 has a single packet: only buffer 1 forwards.
        pattern = InjectionPattern.from_tuples([(0, 1, 5), (0, 1, 5), (0, 3, 5)])
        simulator = Simulator(line, algorithm, pattern, record_history=True)
        result = simulator.run(num_rounds=1, drain=False)
        assert result.history[0].forwarded == 1
        assert algorithm.occupancy(3) == 1

    def test_radius_extends_reaction_downstream(self):
        line = LineTopology(6)
        algorithm = LocalThresholdForwarding(line, locality=2)
        # Buffer 1 is bad; buffer 3 (within distance 2) also forwards, buffer 5
        # would be out of range but is the destination anyway.
        pattern = InjectionPattern.from_tuples([(0, 1, 5), (0, 1, 5), (0, 3, 5)])
        simulator = Simulator(line, algorithm, pattern, record_history=True)
        result = simulator.run(num_rounds=1, drain=False)
        assert result.history[0].forwarded == 2

    def test_global_view_matches_pts_exactly(self):
        """locality >= n is PTS: identical occupancy trajectory on the same workload."""
        line = LineTopology(24)
        sigma = 3
        pattern = pts_burst_stress(line, 1.0, sigma, 100)
        local_result = run_simulation(
            line, LocalThresholdForwarding(line, locality=line.num_nodes), pattern
        )
        pts_result = run_simulation(line, PeakToSink(line), pattern)
        assert local_result.max_occupancy == pts_result.max_occupancy
        assert local_result.packets_delivered == pts_result.packets_delivered

    @pytest.mark.parametrize("locality", [0, 1, 2, 4, 8, 24])
    def test_all_radii_respect_the_pts_bound_on_stress(self, locality):
        """Empirically, the local rule also stays within 2 + sigma on these
        workloads (no claim is made that this holds adversarially)."""
        line = LineTopology(24)
        sigma = 2
        pattern = pts_burst_stress(line, 1.0, sigma, 80)
        result = run_simulation(
            line, LocalThresholdForwarding(line, locality=locality), pattern
        )
        assert result.max_occupancy <= pts_upper_bound(sigma) + locality_slack(locality)

    def test_larger_radius_never_hurts_occupancy(self):
        line = LineTopology(32)
        sigma = 3
        pattern = single_destination_adversary(line, 1.0, sigma, 120, seed=3)
        occupancies = []
        for locality in (0, 2, 8, 32):
            result = run_simulation(
                line, LocalThresholdForwarding(line, locality=locality), pattern
            )
            occupancies.append(result.max_occupancy)
        assert occupancies == sorted(occupancies, reverse=True) or len(set(occupancies)) == 1


def locality_slack(locality: int) -> int:
    """Allowed slack over the PTS bound for small radii in the empirical test.

    The locality-limited rule has no proven bound; tiny radii may exceed
    2 + sigma by a little on bursty workloads, so the test allows one extra
    packet for radius 0 and none otherwise.
    """
    return 1 if locality == 0 else 0


class TestDownhill:
    def test_forwards_when_not_smaller_than_successor(self):
        line = LineTopology(6)
        algorithm = DownhillForwarding(line)
        pattern = InjectionPattern.from_tuples(
            [(0, 0, 5), (0, 2, 5), (0, 2, 5), (0, 3, 5)]
        )
        simulator = Simulator(line, algorithm, pattern, record_history=True)
        result = simulator.run(num_rounds=1, drain=False)
        # Buffer 0 (1 >= 0 at buffer 1) forwards, buffer 2 (2 >= 1) forwards,
        # buffer 3 (1 >= 0) forwards: 3 packets move.
        assert result.history[0].forwarded == 3

    def test_holds_when_successor_is_fuller(self):
        line = LineTopology(6)
        algorithm = DownhillForwarding(line)
        pattern = InjectionPattern.from_tuples([(0, 0, 5), (0, 1, 5), (0, 1, 5)])
        simulator = Simulator(line, algorithm, pattern, record_history=True)
        simulator.run(num_rounds=1, drain=False)
        # Buffer 0 holds (1 < 2 at buffer 1); buffer 1 forwards.
        assert algorithm.occupancy(0) == 1

    def test_drains_single_destination_traffic(self):
        line = LineTopology(16)
        pattern = single_destination_adversary(line, 1.0, 2, 60, seed=5)
        result = run_simulation(line, DownhillForwarding(line), pattern)
        assert result.drained

    def test_wrong_destination_rejected(self):
        line = LineTopology(8)
        pattern = InjectionPattern.from_tuples([(0, 0, 3)])
        with pytest.raises(SchedulingError):
            run_simulation(line, DownhillForwarding(line), pattern)
