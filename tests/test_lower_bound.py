"""Unit tests for the Section 5 lower-bound construction."""

from __future__ import annotations

import pytest

from repro.adversary.bounded import tightest_sigma
from repro.adversary.lower_bound import (
    LowerBoundConstruction,
    front_position,
    injection_site,
    lower_bound_network_size,
)
from repro.baselines.greedy import GreedyForwarding
from repro.core.ppts import ParallelPeakToSink
from repro.network.errors import ConfigurationError
from repro.network.simulator import run_simulation


class TestStructure:
    def test_network_size_formula(self):
        assert lower_bound_network_size(2, 2) == 12
        assert lower_bound_network_size(3, 2) == 27
        assert lower_bound_network_size(2, 3) == 32

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            lower_bound_network_size(1, 2)
        with pytest.raises(ConfigurationError):
            LowerBoundConstruction(2, 0, 0.5)
        with pytest.raises(ConfigurationError):
            LowerBoundConstruction(2, 2, 0.0)

    def test_injection_sites_hand_computed(self):
        # m = 2, ell = 2, phase digits all zero:
        # v_1 = (2*2 - 1*1) + (3*4 - 2*2) = 3 + 8 = 11; v_2 = 8.
        assert injection_site(1, [0, 0], 2, 2) == 11
        assert injection_site(2, [0, 0], 2, 2) == 8

    def test_sites_decrease_as_phase_digits_grow(self):
        construction = LowerBoundConstruction(3, 2, 0.5)
        fronts = [construction.phase_plan(p).sites[0] for p in range(construction.num_phases)]
        assert fronts == sorted(fronts, reverse=True)
        assert all(0 <= f < construction.num_nodes for f in fronts)

    def test_front_position_matches_phase_plan(self):
        construction = LowerBoundConstruction(2, 3, 0.6)
        for phase in range(construction.num_phases):
            plan = construction.phase_plan(phase)
            for offset in range(construction.phase_length):
                assert (
                    construction.front(plan.first_round + offset) == plan.sites[0]
                )
        assert front_position(0, 2, 3) == construction.phase_plan(0).sites[0]

    def test_phase_routes_are_edge_disjoint(self):
        construction = LowerBoundConstruction(3, 3, 0.4)
        for phase in (0, 1, construction.num_phases - 1):
            plan = construction.phase_plan(phase)
            covered = []
            for source, destination in plan.routes:
                if destination > source:
                    covered.extend(range(source, destination))
            assert len(covered) == len(set(covered))

    def test_route_types(self):
        construction = LowerBoundConstruction(2, 2, 0.5)
        plan = construction.phase_plan(0)
        # type-1 targets the virtual sink, type-(ell+1) starts at buffer 0.
        assert plan.routes[0][1] == construction.num_nodes
        assert plan.routes[-1][0] == 0
        assert len(plan.routes) == construction.levels + 1

    def test_theoretical_bound_positive_above_threshold(self):
        assert LowerBoundConstruction(3, 2, 0.5).theoretical_bound() > 0
        assert LowerBoundConstruction(3, 2, 0.3).theoretical_bound() == 0.0


class TestPattern:
    def test_packets_per_phase(self):
        construction = LowerBoundConstruction(4, 2, 0.5)
        pattern = construction.build_pattern(num_phases=1)
        # (ell + 1) types, rho * m packets each.
        assert len(pattern) == 3 * 2

    def test_pattern_routes_valid_on_topology(self):
        construction = LowerBoundConstruction(2, 3, 0.6)
        topology = construction.topology()
        for injection in construction.build_pattern(num_phases=4).all_injections():
            topology.validate_route(injection.source, injection.destination)

    def test_pattern_is_nearly_1_bounded(self):
        """The construction claims (rho, 1)-boundedness; allow a small constant
        because injections are spread per-phase rather than globally."""
        construction = LowerBoundConstruction(3, 2, 0.5)
        pattern = construction.build_pattern()
        sigma = tightest_sigma(pattern, construction.topology(), construction.rho)
        assert sigma <= 2.0 + 1e-9

    def test_truncated_pattern(self):
        construction = LowerBoundConstruction(2, 2, 0.5)
        assert construction.build_pattern(num_phases=2).horizon <= 2 * 2


class TestClassification:
    def test_fresh_and_stale_counting(self):
        construction = LowerBoundConstruction(2, 2, 0.5)
        front = construction.front(0)
        locations = {0: front, 1: front + 1, 2: None, 3: 0}
        counts = construction.classify_packets(locations, round_number=0)
        assert counts == {"fresh": 2, "stale": 1, "delivered": 1}

    def test_round_out_of_range_rejected(self):
        construction = LowerBoundConstruction(2, 2, 0.5)
        with pytest.raises(ConfigurationError):
            construction.front(construction.num_rounds)


class TestAdversaryForcesLoad:
    @pytest.mark.parametrize("algorithm_factory", [
        lambda line: ParallelPeakToSink(line),
        lambda line: GreedyForwarding(line),
    ])
    def test_measured_load_meets_theoretical_bound(self, algorithm_factory):
        """Theorem 5.1 holds for *every* protocol, so each algorithm we run
        must exhibit at least the theoretical occupancy somewhere."""
        construction = LowerBoundConstruction(branching=4, levels=2, rho=0.75)
        topology = construction.topology()
        pattern = construction.build_pattern()
        result = run_simulation(
            topology, algorithm_factory(topology), pattern, drain=False
        )
        assert result.max_occupancy >= construction.theoretical_bound() - 1e-9

    def test_larger_networks_force_larger_loads(self):
        """The forced load grows with n^(1/ell) (shape of Theorem 5.1)."""
        small = LowerBoundConstruction(3, 2, 0.75)
        large = LowerBoundConstruction(6, 2, 0.75)
        small_result = run_simulation(
            small.topology(), GreedyForwarding(small.topology()),
            small.build_pattern(), drain=False,
        )
        large_result = run_simulation(
            large.topology(), GreedyForwarding(large.topology()),
            large.build_pattern(), drain=False,
        )
        assert large_result.max_occupancy >= small_result.max_occupancy
        assert large.theoretical_bound() > small.theoretical_bound()
