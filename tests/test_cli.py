"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.algorithm == "ppts"
        assert args.nodes == 64
        assert args.rho == 1.0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--algorithm", "magic"])


class TestExperimentCommands:
    def test_experiments_lists_all_nine(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        for experiment_id in (f"E{i}" for i in range(1, 10)):
            assert experiment_id in output

    def test_experiment_detail(self, capsys):
        assert main(["experiment", "e4"]) == 0
        output = capsys.readouterr().out
        assert "Theorem 4.1" in output
        assert "bench_thm_4_1_hpts.py" in output

    def test_unknown_experiment_is_an_error(self, capsys):
        with pytest.raises(KeyError):
            main(["experiment", "E42"])


class TestSimulateCommand:
    def test_ppts_run_prints_bound_row(self, capsys):
        code = main(
            [
                "simulate", "--algorithm", "ppts", "--nodes", "32",
                "--destinations", "4", "--rounds", "60",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "PPTS" in output
        assert "within_bound" in output
        assert "yes" in output

    def test_pts_run(self, capsys):
        assert main(
            ["simulate", "--algorithm", "pts", "--nodes", "24", "--rounds", "50"]
        ) == 0
        assert "PTS" in capsys.readouterr().out

    def test_hpts_run_derives_branching(self, capsys):
        assert main(
            [
                "simulate", "--algorithm", "hpts", "--nodes", "64", "--levels", "3",
                "--rho", "0.33", "--rounds", "60",
            ]
        ) == 0
        assert "HPTS" in capsys.readouterr().out

    def test_local_and_downhill_runs(self, capsys):
        assert main(
            ["simulate", "--algorithm", "local", "--locality", "3", "--nodes", "24",
             "--rounds", "40"]
        ) == 0
        assert "Local-r3" in capsys.readouterr().out
        assert main(
            ["simulate", "--algorithm", "downhill", "--nodes", "24", "--rounds", "40"]
        ) == 0
        assert "Downhill" in capsys.readouterr().out

    def test_greedy_run_with_policy(self, capsys):
        assert main(
            ["simulate", "--algorithm", "greedy", "--policy", "ntg", "--nodes", "24",
             "--rounds", "40"]
        ) == 0
        assert "Greedy-NTG" in capsys.readouterr().out

    def test_workload_override(self, capsys):
        assert main(
            ["simulate", "--algorithm", "ppts", "--workload", "nested",
             "--nodes", "32", "--destinations", "4", "--rounds", "40"]
        ) == 0
        assert "nested" in capsys.readouterr().out


class TestSpecAndJsonFlags:
    def test_simulate_json_emits_machine_readable_row(self, capsys):
        import json

        assert main(
            ["simulate", "--algorithm", "pts", "--nodes", "24", "--rounds", "50",
             "--json"]
        ) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["algorithm"] == "PTS"
        assert row["within_bound"] is True
        assert row["max_occupancy"] <= row["bound"]

    def test_simulate_from_spec_file(self, tmp_path, capsys):
        import json

        from repro.api import Scenario

        spec = (
            Scenario.line(24)
            .algorithm("pts")
            .adversary("burst", rho=1.0, sigma=2, rounds=50)
            .named("from-file")
            .build()
        )
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(spec.to_json(indent=2))
        assert main(["simulate", "--spec", str(spec_file), "--json"]) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["scenario"] == "from-file"
        assert row["n"] == 24

    def test_simulate_missing_spec_file_is_an_error(self, tmp_path, capsys):
        assert main(["simulate", "--spec", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_simulate_exits_nonzero_when_bound_exceeded(self, tmp_path, capsys):
        import json

        from repro.adversary.base import InjectionPattern
        from repro.adversary.stress import pts_burst_stress
        from repro.api import ADVERSARIES, Scenario, register_adversary

        # An adversary that under-declares its burstiness: the real traffic is
        # (1, 6)-bounded but the declared envelope is (rho, 0), so PTS's
        # 2 + sigma bound is measured as violated and the CLI must exit 1.
        @register_adversary("test-underdeclared")
        def build_underdeclared(topology, *, rho, sigma, rounds, **_params):
            pattern = pts_burst_stress(topology, 1.0, 6, rounds)
            return InjectionPattern(pattern.all_injections(), rho=rho, sigma=0)

        try:
            spec = (
                Scenario.line(16)
                .algorithm("pts")
                .adversary("test-underdeclared", rho=1.0, sigma=0, rounds=40)
                .build()
            )
            spec_file = tmp_path / "hostile.json"
            spec_file.write_text(spec.to_json())
            code = main(["simulate", "--spec", str(spec_file), "--json"])
            row = json.loads(capsys.readouterr().out)
            assert row["within_bound"] is False
            assert code == 1
        finally:
            ADVERSARIES._entries.pop("test-underdeclared", None)

    def test_bounds_json(self, capsys):
        import json

        assert main(["bounds", "--nodes", "64", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parameters"]["nodes"] == 64
        assert payload["bounds"]["PTS (Prop 3.1)"] == 4.0


class TestBoundsAndFigureCommands:
    def test_bounds_table(self, capsys):
        assert main(
            ["bounds", "--nodes", "64", "--destinations", "12", "--rho", "0.5",
             "--sigma", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "PTS (Prop 3.1)" in output
        assert "Thm 4.1" in output
        assert "Thm 5.1" in output

    def test_figure1_plain(self, capsys):
        assert main(["figure1"]) == 0
        output = capsys.readouterr().out
        assert "j=3" in output
        assert "0000" in output

    def test_figure1_with_trajectory(self, capsys):
        assert main(
            ["figure1", "--source", "2", "--destination", "13"]
        ) == 0
        output = capsys.readouterr().out
        assert "*" in output
        assert "Segments of 2 -> 13" in output


def _case_spec_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "surprise_key": 1}')
    return ["simulate", "--spec", str(bad)], "unknown key(s)"


def _case_repro_error(tmp_path):
    return (
        ["simulate", "--algorithm", "pts", "--checkpoint-every", "5"],
        "--checkpoint-every requires --checkpoint",
    )


def _case_checkpoint_mismatch(tmp_path):
    ckpt = str(tmp_path / "run.ckpt")
    assert main(
        ["simulate", "--algorithm", "pts", "--nodes", "16", "--rounds", "30",
         "--checkpoint-every", "10", "--checkpoint", ckpt]
    ) == 0
    other = tmp_path / "other.json"
    from repro.api import Scenario

    other.write_text(
        Scenario.line(16)
        .algorithm("greedy")
        .adversary("burst", rho=1.0, sigma=2, rounds=30)
        .build()
        .to_json()
    )
    return (
        ["simulate", "--resume", ckpt, "--spec", str(other)],
        "refusing to mix executions",
    )


def _case_recovery_exhausted(tmp_path):
    from repro.network.faults import FaultEvent, FaultPlan

    plan = tmp_path / "plan.json"
    plan.write_text(
        FaultPlan(events=(FaultEvent(kind="crash", round=2, segment=0),)).to_json()
    )
    return (
        ["simulate", "--algorithm", "pts", "--nodes", "16", "--rounds", "20",
         "--shards", "2", "--recovery", "restart", "--max-worker-restarts", "0",
         "--checkpoint-every", "5", "--checkpoint", str(tmp_path / "s.ckpt"),
         "--faults", str(plan)],
        "max_worker_restarts=0",
    )


def _case_service_unavailable(tmp_path):
    return (
        ["service", "ls", "--data", str(tmp_path / "no-server")],
        "repro service serve",
    )


def _case_job_not_found(tmp_path):
    from repro.service import JobService

    service = JobService(
        str(tmp_path / "svc"), poll_interval=0.05, fsync=False
    ).start()
    return (
        ["service", "info", "job-999999", "--socket", service.socket_path],
        "service ls",
        service.stop,
    )


TYPED_ERROR_CASES = {
    "SpecError": _case_spec_error,
    "ReproError": _case_repro_error,
    "CheckpointSpecMismatchError": _case_checkpoint_mismatch,
    "RecoveryExhaustedError": _case_recovery_exhausted,
    "ServiceUnavailableError": _case_service_unavailable,
    "JobNotFoundError": _case_job_not_found,
}


class TestTypedErrorsExitTwo:
    """Every typed error family surfaces as exit code 2 with an actionable
    message on stderr — never a traceback, never a bare non-zero."""

    @pytest.mark.parametrize("family", sorted(TYPED_ERROR_CASES))
    def test_typed_error_maps_to_exit_2(self, tmp_path, capsys, family):
        case = TYPED_ERROR_CASES[family](tmp_path)
        argv, fragment = case[0], case[1]
        cleanup = case[2] if len(case) > 2 else None
        try:
            capsys.readouterr()  # drop any setup output
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert fragment in err, f"{family}: {fragment!r} not in {err!r}"
            assert "Traceback" not in err
        finally:
            if cleanup is not None:
                cleanup()


class TestServiceRecoveryTelemetry:
    def test_sharded_json_row_carries_recovery(self, capsys):
        import json

        assert main(
            ["simulate", "--algorithm", "pts", "--nodes", "16", "--rounds",
             "30", "--shards", "2", "--json"]
        ) == 0
        row = json.loads(capsys.readouterr().out)
        assert "recovery" in row
        assert row["recovery"]["restarts"] == 0

    def test_single_process_json_row_has_no_recovery_key(self, capsys):
        import json

        assert main(
            ["simulate", "--algorithm", "pts", "--nodes", "16", "--rounds",
             "30", "--json"]
        ) == 0
        assert "recovery" not in json.loads(capsys.readouterr().out)
