"""Unit tests for the PPTS algorithm (Algorithm 2, Proposition 3.2)."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.generators import random_line_adversary, saturating_line_adversary
from repro.adversary.stress import (
    nested_route_stress,
    round_robin_destination_stress,
)
from repro.core.bounds import ppts_upper_bound
from repro.core.ppts import ParallelPeakToSink
from repro.network.errors import ConfigurationError
from repro.network.simulator import Simulator, run_simulation
from repro.network.topology import LineTopology


class TestConfiguration:
    def test_destination_discovery(self):
        line = LineTopology(10)
        algorithm = ParallelPeakToSink(line)
        assert algorithm.destinations() == []
        pattern = InjectionPattern.from_tuples([(0, 0, 4), (0, 0, 9)])
        run_simulation(line, algorithm, pattern, drain=False)
        assert algorithm.destinations() == [4, 9]

    def test_declared_destinations(self):
        line = LineTopology(10)
        algorithm = ParallelPeakToSink(line, destinations=[9, 3, 3])
        assert algorithm.destinations() == [3, 9]

    def test_invalid_declared_destination(self):
        line = LineTopology(10)
        with pytest.raises(ConfigurationError):
            ParallelPeakToSink(line, destinations=[0])
        with pytest.raises(ConfigurationError):
            ParallelPeakToSink(line, destinations=[11])

    def test_theoretical_bound_tracks_destination_count(self):
        line = LineTopology(10)
        algorithm = ParallelPeakToSink(line, destinations=[3, 6, 9])
        assert algorithm.theoretical_bound(2) == 1 + 3 + 2

    def test_bound_unknown_before_traffic_when_discovering(self):
        line = LineTopology(10)
        assert ParallelPeakToSink(line).theoretical_bound(2) is None


class TestForwardingRule:
    def test_reduces_to_pts_for_single_destination(self):
        line = LineTopology(6)
        algorithm = ParallelPeakToSink(line)
        pattern = InjectionPattern.from_tuples([(0, 1, 5), (0, 1, 5), (0, 3, 5)])
        simulator = Simulator(line, algorithm, pattern, record_history=True)
        result = simulator.run(num_rounds=1, drain=False)
        # Same behaviour as the PTS unit test: the bad buffer and everything
        # to its right (for that destination) forwards.
        assert result.history[0].forwarded == 2

    def test_rightmost_destination_processed_first(self):
        line = LineTopology(10)
        algorithm = ParallelPeakToSink(line)
        # Bad pseudo-buffer for destination 9 at node 4, and a bad
        # pseudo-buffer for destination 3 at node 1: disjoint intervals, both
        # forward in the same round.
        pattern = InjectionPattern.from_tuples(
            [(0, 4, 9), (0, 4, 9), (0, 1, 3), (0, 1, 3)]
        )
        simulator = Simulator(line, algorithm, pattern, record_history=True)
        result = simulator.run(num_rounds=1, drain=False)
        assert result.history[0].forwarded == 2

    def test_smaller_destination_blocked_by_frontier(self):
        line = LineTopology(10)
        algorithm = ParallelPeakToSink(line)
        # Destination 9 is bad at node 2; destination 5 is bad at node 4.
        # The frontier moves to 2 after processing destination 9, so the
        # destination-5 interval (which lies right of the frontier) must wait.
        pattern = InjectionPattern.from_tuples(
            [(0, 2, 9), (0, 2, 9), (0, 4, 5), (0, 4, 5)]
        )
        simulator = Simulator(line, algorithm, pattern, record_history=True)
        result = simulator.run(num_rounds=1, drain=False)
        forwarded_nodes = {
            node
            for node, load in algorithm.occupancy_vector().items()
            if load != [0, 0, 2, 0, 2, 0, 0, 0, 0, 0][node]
        }
        assert result.history[0].forwarded >= 1
        assert 4 not in forwarded_nodes  # destination-5 queue did not move

    def test_activations_feasible_lemma_b1(self):
        """No two pseudo-buffers at the same node are ever activated (Lemma B.1)."""
        line = LineTopology(32)
        pattern = saturating_line_adversary(line, 1.0, 3, 150, 6, seed=3)
        # validate_capacity=True (default) raises on any violation.
        result = run_simulation(line, ParallelPeakToSink(line), pattern)
        assert result.packets_injected > 0


class TestProposition32:
    @pytest.mark.parametrize("num_destinations", [1, 2, 4, 8, 16])
    def test_round_robin_stress_respects_bound(self, num_destinations):
        line = LineTopology(64)
        sigma = 2
        pattern = round_robin_destination_stress(
            line, 1.0, sigma, 200, num_destinations
        )
        result = run_simulation(line, ParallelPeakToSink(line), pattern)
        assert result.max_occupancy <= ppts_upper_bound(num_destinations, sigma)

    @pytest.mark.parametrize("sigma", [0, 1, 3])
    def test_nested_routes_respect_bound(self, sigma):
        line = LineTopology(48)
        pattern = nested_route_stress(line, 1.0, sigma, 150, 6)
        result = run_simulation(line, ParallelPeakToSink(line), pattern)
        assert result.max_occupancy <= ppts_upper_bound(6, sigma)

    def test_random_adversaries_respect_bound(self):
        line = LineTopology(40)
        sigma = 2
        for seed in range(5):
            pattern = random_line_adversary(
                line, 1.0, sigma, 120, num_destinations=5, seed=seed
            )
            result = run_simulation(line, ParallelPeakToSink(line), pattern)
            d = pattern.num_destinations
            assert result.max_occupancy <= ppts_upper_bound(max(d, 1), sigma)

    def test_d_term_is_really_paid(self):
        """Round-robin traffic drives occupancy to at least d (shape check)."""
        line = LineTopology(64)
        d = 12
        pattern = round_robin_destination_stress(line, 1.0, 2, 300, d)
        result = run_simulation(line, ParallelPeakToSink(line), pattern)
        assert result.max_occupancy >= d - 1

    def test_occupancy_grows_linearly_with_destinations(self):
        """The measured curve should look like Theta(d), matching Prop 3.2 + the
        Omega(d) lower bound cited from prior work."""
        line = LineTopology(64)
        occupancies = []
        for d in (2, 8, 32):
            pattern = round_robin_destination_stress(line, 1.0, 1, 400, d)
            result = run_simulation(line, ParallelPeakToSink(line), pattern)
            occupancies.append(result.max_occupancy)
        assert occupancies[0] < occupancies[1] < occupancies[2]
        assert occupancies[2] >= 4 * occupancies[0]
