"""Unit tests for the tree variants of PTS and PPTS (Appendix B.2)."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.generators import random_tree_adversary
from repro.adversary.stress import tree_convergecast_stress
from repro.core.bounds import pts_upper_bound, tree_ppts_upper_bound
from repro.core.tree import TreeParallelPeakToSink, TreePeakToSink
from repro.network.errors import ConfigurationError, SchedulingError
from repro.network.simulator import Simulator, run_simulation
from repro.network.topology import (
    TreeTopology,
    binary_tree,
    caterpillar_tree,
    random_tree,
    star_tree,
)


class TestTreePTSConfiguration:
    def test_default_destination_is_root(self):
        tree = star_tree(4)
        assert TreePeakToSink(tree).destination == tree.root

    def test_wrong_destination_packet_rejected(self):
        # Chain 2 -> 1 -> 0: a packet destined for node 1 is a valid route but
        # not the algorithm's single destination (the root), so it is rejected.
        tree = TreeTopology({0: None, 1: 0, 2: 1})
        algorithm = TreePeakToSink(tree, destination=tree.root)
        pattern = InjectionPattern.from_tuples([(0, 2, 1)])
        with pytest.raises(SchedulingError):
            run_simulation(tree, algorithm, pattern)

    def test_theoretical_bound(self):
        tree = star_tree(4)
        assert TreePeakToSink(tree).theoretical_bound(3) == 5


class TestTreePTSForwarding:
    def test_no_bad_buffer_means_no_forwarding(self):
        tree = star_tree(3)
        algorithm = TreePeakToSink(tree)
        pattern = InjectionPattern.from_tuples([(0, 1, 0), (0, 2, 0)])
        result = run_simulation(tree, algorithm, pattern, drain=False)
        assert result.packets_delivered == 0

    def test_bad_buffer_activates_path_to_root(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1, 3: 2})
        algorithm = TreePeakToSink(tree)
        # Two packets at the deepest node 3 (bad), one at node 1 on its path.
        pattern = InjectionPattern.from_tuples([(0, 3, 0), (0, 3, 0), (0, 1, 0)])
        simulator = Simulator(tree, algorithm, pattern, record_history=True)
        result = simulator.run(num_rounds=1, drain=False)
        # Nodes 3 and 1 forward (node 2 is empty): the packet at 1 is delivered.
        assert result.history[0].forwarded == 2
        assert result.history[0].delivered == 1

    def test_branches_without_bad_buffers_stay_idle(self):
        tree = TreeTopology({0: None, 1: 0, 2: 0, 3: 1, 4: 2})
        algorithm = TreePeakToSink(tree)
        pattern = InjectionPattern.from_tuples([(0, 3, 0), (0, 3, 0), (0, 4, 0)])
        simulator = Simulator(tree, algorithm, pattern)
        simulator.run(num_rounds=1, drain=False)
        # The packet under node 2's branch (at node 4) did not move.
        assert algorithm.occupancy(4) == 1


class TestPropositionB3:
    @pytest.mark.parametrize("sigma", [0, 1, 3])
    def test_convergecast_respects_bound_on_caterpillar(self, sigma):
        tree = caterpillar_tree(6, 2)
        pattern = tree_convergecast_stress(tree, 1.0, sigma, 120)
        result = run_simulation(tree, TreePeakToSink(tree), pattern)
        assert result.max_occupancy <= pts_upper_bound(sigma)

    @pytest.mark.parametrize("builder", [star_tree, lambda n: binary_tree(3)])
    def test_other_topologies(self, builder):
        tree = builder(8)
        sigma = 2
        pattern = tree_convergecast_stress(tree, 1.0, sigma, 80)
        result = run_simulation(tree, TreePeakToSink(tree), pattern)
        assert result.max_occupancy <= pts_upper_bound(sigma)

    def test_random_trees_random_traffic(self):
        for seed in range(3):
            tree = random_tree(30, seed=seed)
            sigma = 2
            pattern = random_tree_adversary(tree, 1.0, sigma, 100, seed=seed)
            result = run_simulation(tree, TreePeakToSink(tree), pattern)
            assert result.max_occupancy <= pts_upper_bound(sigma)


class TestTreePPTSConfiguration:
    def test_destination_discovery_and_order(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1, 3: 2})
        algorithm = TreeParallelPeakToSink(tree)
        pattern = InjectionPattern.from_tuples([(0, 3, 1), (0, 3, 0)])
        run_simulation(tree, algorithm, pattern, drain=False)
        destinations = algorithm.destinations()
        # Topological order: deeper destination (1) before its ancestor (0).
        assert destinations == [1, 0]

    def test_declared_destination_validation(self):
        tree = star_tree(3)
        with pytest.raises(ConfigurationError):
            TreeParallelPeakToSink(tree, destinations=[42])

    def test_destination_depth_and_bound(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1, 3: 2})
        algorithm = TreeParallelPeakToSink(tree, destinations=[0, 1, 2])
        assert algorithm.destination_depth() == 3
        assert algorithm.theoretical_bound(2) == 1 + 3 + 2

    def test_bound_none_before_traffic(self):
        tree = star_tree(3)
        assert TreeParallelPeakToSink(tree).theoretical_bound(1) is None


class TestProposition35:
    def test_spine_destinations_on_caterpillar(self):
        """d' equals the spine length when every spine node is a destination."""
        tree = caterpillar_tree(5, 2)
        spine = [v for v in tree.nodes if tree.children(v)]
        sigma = 2
        pattern = tree_convergecast_stress(tree, 1.0, sigma, 150, destinations=spine)
        algorithm = TreeParallelPeakToSink(tree, destinations=spine)
        result = run_simulation(tree, algorithm, pattern)
        d_prime = tree.destination_depth(spine)
        assert d_prime == len(spine)
        assert result.max_occupancy <= tree_ppts_upper_bound(d_prime, sigma)

    def test_star_with_root_destination(self):
        tree = star_tree(10)
        sigma = 1
        pattern = tree_convergecast_stress(tree, 1.0, sigma, 80)
        algorithm = TreeParallelPeakToSink(tree, destinations=[tree.root])
        result = run_simulation(tree, algorithm, pattern)
        assert result.max_occupancy <= tree_ppts_upper_bound(1, sigma)

    def test_binary_tree_with_internal_destinations(self):
        tree = binary_tree(3)
        destinations = [0, 1, 2, 3]
        sigma = 2
        pattern = tree_convergecast_stress(tree, 1.0, sigma, 120, destinations=destinations)
        algorithm = TreeParallelPeakToSink(tree, destinations=destinations)
        result = run_simulation(tree, algorithm, pattern)
        d_prime = tree.destination_depth(destinations)
        assert result.max_occupancy <= tree_ppts_upper_bound(d_prime, sigma)

    def test_random_trees_random_traffic_respect_bound(self):
        for seed in range(3):
            tree = random_tree(25, seed=seed + 100)
            internal = [v for v in tree.nodes if tree.children(v)][:4]
            sigma = 2
            pattern = random_tree_adversary(
                tree, 1.0, sigma, 80, destinations=internal, seed=seed
            )
            if len(pattern) == 0:
                continue
            algorithm = TreeParallelPeakToSink(tree, destinations=internal)
            result = run_simulation(tree, algorithm, pattern)
            d_prime = tree.destination_depth(internal)
            assert result.max_occupancy <= tree_ppts_upper_bound(d_prime, sigma)

    def test_capacity_never_violated_on_trees(self):
        tree = caterpillar_tree(6, 3)
        spine = [v for v in tree.nodes if tree.children(v)]
        pattern = tree_convergecast_stress(tree, 1.0, 3, 100, destinations=spine)
        # Default validate_capacity=True would raise on a violation.
        result = run_simulation(
            tree, TreeParallelPeakToSink(tree, destinations=spine), pattern
        )
        assert result.packets_injected > 0
