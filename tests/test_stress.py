"""Unit tests for the deterministic stress adversaries."""

from __future__ import annotations

import pytest

from repro.adversary.bounded import check_bounded
from repro.adversary.stress import (
    evenly_spaced_destinations,
    hierarchy_stress,
    nested_route_stress,
    pts_burst_stress,
    round_robin_destination_stress,
    tree_convergecast_stress,
)
from repro.network.errors import ConfigurationError
from repro.network.topology import LineTopology, caterpillar_tree


class TestEvenlySpacedDestinations:
    def test_count_and_range(self):
        destinations = evenly_spaced_destinations(33, 8)
        assert len(destinations) == 8
        assert destinations == sorted(destinations)
        assert destinations[-1] == 32
        assert all(1 <= w <= 32 for w in destinations)

    def test_single_destination_is_last_node(self):
        assert evenly_spaced_destinations(10, 1) == [9]

    def test_dense_destination_request(self):
        destinations = evenly_spaced_destinations(9, 8)
        assert len(destinations) == 8
        assert len(set(destinations)) == 8

    def test_too_many_rejected(self):
        with pytest.raises(ConfigurationError):
            evenly_spaced_destinations(5, 5)
        with pytest.raises(ConfigurationError):
            evenly_spaced_destinations(5, 0)


class TestPtsBurstStress:
    def test_bounded_by_construction(self):
        line = LineTopology(20)
        for sigma in (0, 1, 4):
            pattern = pts_burst_stress(line, 1.0, sigma, 60)
            assert check_bounded(pattern, line, 1.0, sigma).bounded

    def test_single_destination(self):
        line = LineTopology(20)
        pattern = pts_burst_stress(line, 1.0, 2, 50)
        assert pattern.destinations() == [19]

    def test_first_round_spends_burst_budget(self):
        line = LineTopology(20)
        pattern = pts_burst_stress(line, 1.0, 3, 50)
        assert len(pattern.injections_for_round(0)) == 4  # sigma + rho packets

    def test_sustains_rate_rho(self):
        line = LineTopology(20)
        pattern = pts_burst_stress(line, 1.0, 0, 50)
        # After the (empty) burst, exactly one packet per round fits.
        assert len(pattern) == 50


class TestRoundRobinDestinationStress:
    def test_bounded(self):
        line = LineTopology(32)
        pattern = round_robin_destination_stress(line, 1.0, 2, 100, 8)
        assert check_bounded(pattern, line, 1.0, 2).bounded

    def test_covers_all_destinations(self):
        line = LineTopology(32)
        pattern = round_robin_destination_stress(line, 1.0, 2, 100, 8)
        assert pattern.num_destinations == 8

    def test_all_from_single_source(self):
        line = LineTopology(32)
        pattern = round_robin_destination_stress(line, 1.0, 1, 60, 4, source=3)
        assert pattern.sources() == [3]

    def test_source_beyond_destinations_rejected(self):
        line = LineTopology(8)
        with pytest.raises(ConfigurationError):
            round_robin_destination_stress(line, 1.0, 1, 10, 1, source=7)


class TestNestedRouteStress:
    def test_bounded(self):
        line = LineTopology(40)
        pattern = nested_route_stress(line, 1.0, 1, 80, 5)
        assert check_bounded(pattern, line, 1.0, 1).bounded

    def test_wave_routes_are_edge_disjoint(self):
        # With sigma = 0 exactly one wave fits per round, so the first round
        # is a single wave and its routes must not overlap.
        line = LineTopology(40)
        pattern = nested_route_stress(line, 1.0, 0, 10, 5)
        first_round = pattern.injections_for_round(0)
        covered = []
        for injection in first_round:
            covered.extend(range(injection.source, injection.destination))
        assert len(covered) == len(set(covered))

    def test_injects_one_packet_per_destination_per_wave(self):
        line = LineTopology(40)
        pattern = nested_route_stress(line, 1.0, 0, 1, 5)
        assert len(pattern.injections_for_round(0)) == 5


class TestHierarchyStress:
    def test_bounded(self):
        line = LineTopology(64)
        pattern = hierarchy_stress(line, 1.0 / 3, 2, 120, branching=4, levels=3)
        assert check_bounded(pattern, line, 1.0 / 3, 2).bounded

    def test_destinations_touch_multiple_levels(self):
        line = LineTopology(64)
        pattern = hierarchy_stress(line, 0.25, 2, 120, branching=4, levels=3)
        destinations = pattern.destinations()
        assert len(destinations) >= 3

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            hierarchy_stress(LineTopology(60), 0.5, 1, 10, branching=4, levels=3)


class TestTreeConvergecastStress:
    def test_routes_valid_and_leaves_fire(self):
        tree = caterpillar_tree(5, 2)
        pattern = tree_convergecast_stress(tree, 1.0, 2, 60)
        assert len(pattern) > 0
        leaves = set(tree.leaves())
        for injection in pattern.all_injections():
            assert injection.source in leaves
            tree.validate_route(injection.source, injection.destination)

    def test_respects_destination_set(self):
        tree = caterpillar_tree(6, 1)
        spine = [v for v in tree.nodes if tree.children(v)]
        pattern = tree_convergecast_stress(tree, 0.5, 1, 40, destinations=spine)
        assert set(pattern.destinations()).issubset(set(spine))
