"""Unit tests for badness accounting (Definitions 3.3, 4.5, B.4)."""

from __future__ import annotations

from repro.core.badness import (
    hpts_level_badness,
    hpts_total_badness,
    line_badness_by_destination,
    line_badness_single_destination,
    line_total_badness,
    pseudo_buffer_badness,
    tree_badness,
    tree_badness_by_destination,
)
from repro.core.packet import Packet, make_injection
from repro.core.pseudobuffer import NodeBuffer
from repro.network.topology import TreeTopology


def _buffers(num_nodes: int):
    return {i: NodeBuffer(i) for i in range(num_nodes)}


def _fill(buffers, node: int, key, count: int, destination: int = None):
    destination = destination if destination is not None else (key if isinstance(key, int) else 7)
    for _ in range(count):
        packet = Packet.from_injection(make_injection(0, node, destination))
        packet.location = node
        buffers[node].store(packet, key)


class TestPseudoBufferBadness:
    def test_definition(self):
        assert pseudo_buffer_badness(0) == 0
        assert pseudo_buffer_badness(1) == 0
        assert pseudo_buffer_badness(2) == 1
        assert pseudo_buffer_badness(5) == 4


class TestSingleDestinationLine:
    def test_prefix_sums(self):
        buffers = _buffers(6)
        _fill(buffers, 0, 5, 3)   # 2 bad packets
        _fill(buffers, 2, 5, 1)   # 0 bad
        _fill(buffers, 4, 5, 2)   # 1 bad
        badness = line_badness_single_destination(buffers, destination=5)
        assert badness[0] == 2
        assert badness[1] == 2
        assert badness[2] == 2
        assert badness[3] == 2
        assert badness[4] == 3
        assert badness[5] == 3

    def test_packets_at_or_past_destination_not_counted(self):
        buffers = _buffers(6)
        _fill(buffers, 5, 3, 4)  # stored at node 5, right of destination 3
        badness = line_badness_single_destination(buffers, destination=3)
        assert all(value == 0 for value in badness.values())


class TestMultiDestinationLine:
    def test_per_destination_badness(self):
        buffers = _buffers(8)
        destinations = [4, 7]
        _fill(buffers, 1, 4, 3)  # 2 bad packets for destination 4
        _fill(buffers, 2, 7, 2)  # 1 bad packet for destination 7
        per = line_badness_by_destination(buffers, destinations)
        assert per[(1, 4)] == 2
        assert per[(3, 4)] == 2
        assert per[(4, 4)] == 0          # destination itself: w_k > i fails
        assert per[(1, 7)] == 0
        assert per[(2, 7)] == 1
        assert per[(6, 7)] == 1

    def test_total_badness_sums_destinations_beyond_i(self):
        buffers = _buffers(8)
        destinations = [4, 7]
        _fill(buffers, 1, 4, 3)
        _fill(buffers, 2, 7, 2)
        total = line_total_badness(buffers, destinations)
        assert total[1] == 2          # only the destination-4 bad packets so far
        assert total[2] == 3          # both groups are upstream of buffer 2
        assert total[3] == 3
        assert total[4] == 1          # destination 4 no longer counts past node 4
        assert total[6] == 1
        assert total[7] == 0

    def test_empty_configuration(self):
        buffers = _buffers(4)
        assert all(v == 0 for v in line_total_badness(buffers, [3]).values())


class TestHPTSLevelBadness:
    def test_prefix_restarts_at_interval_boundaries(self):
        buffers = _buffers(8)
        # Two level-1 intervals: [0, 3] and [4, 7]; key = (level, intermediate dest).
        level_intervals = {1: [(0, 3), (4, 7)]}
        _fill(buffers, 0, (1, 2), 3, destination=2)   # 2 bad in first interval
        _fill(buffers, 5, (1, 6), 2, destination=6)   # 1 bad in second interval
        per = hpts_level_badness(buffers, level_intervals)
        assert per[(0, 1, 2)] == 2
        assert per[(3, 1, 2)] == 2
        # The second interval's prefix does not include the first interval's badness.
        assert per[(4, 1, 6)] == 0
        assert per[(5, 1, 6)] == 1
        assert per[(7, 1, 6)] == 1

    def test_total_badness_sums_levels(self):
        buffers = _buffers(4)
        level_intervals = {0: [(0, 1), (2, 3)], 1: [(0, 3)]}
        _fill(buffers, 0, (1, 2), 2, destination=2)
        _fill(buffers, 0, (0, 1), 2, destination=1)
        total = hpts_total_badness(buffers, level_intervals)
        assert total[0] == 2
        assert total[1] == 2  # level-1 badness propagates to buffer 1; level-0 does not


class TestTreeBadness:
    def test_subtree_accumulation(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1, 3: 1, 4: 0})
        buffers = {v: NodeBuffer(v) for v in tree.nodes}
        _fill(buffers, 2, 0, 3, destination=0)  # 2 bad at leaf 2
        _fill(buffers, 4, 0, 2, destination=0)  # 1 bad at leaf 4
        badness = tree_badness(buffers, tree)
        assert badness[2] == 2
        assert badness[3] == 0
        assert badness[1] == 2
        assert badness[4] == 1
        assert badness[0] == 3

    def test_per_destination_respects_ancestry(self):
        tree = TreeTopology({0: None, 1: 0, 2: 1, 3: 1})
        buffers = {v: NodeBuffer(v) for v in tree.nodes}
        _fill(buffers, 2, 1, 3, destination=1)   # destined for node 1
        per = tree_badness_by_destination(buffers, tree, [0, 1])
        assert per[(2, 1)] == 2
        assert per[(1, 1)] == 0      # node 1 is the destination itself
        assert per[(3, 1)] == 0      # node 3's subtree has no such packets
        assert per[(2, 0)] == 0      # no packets destined for the root
