"""Property-based checkpoint tests: random cut points, double resume, and
restored index structures.

Hypothesis drives the checkpoint round (anywhere in ``[0, T]``), the seed and
the algorithm family; for every example:

* the resumed run's :class:`SimulationResult` is bit-identical to the
  uninterrupted run's (the differential property, at fuzzed cut points);
* *double resume* — save at ``k1``, restore, run on to ``k2``, save again,
  restore again — also lands on the identical result, and the second save of
  an untouched restored engine is **byte-identical** to the file it was
  loaded from (snapshot idempotence: restoring is lossless and the format is
  deterministic);
* the incremental :class:`~repro.core.indexset.BufferIndex` sets rebuilt
  during restore match a from-scratch recomputation over the restored
  buffers, position for position and in sorted order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Scenario, ScenarioSpec, Session
from repro.checkpoint import load_checkpoint, restore_into, save_checkpoint
from repro.core.packet import packet_id_scope
from repro.network.simulator import Simulator

N = 16
ROUNDS = 30


def _spec(algorithm: str, seed: int, history: str) -> ScenarioSpec:
    scenario = Scenario.line(N)
    if algorithm == "hpts":
        scenario.algorithm("hpts", levels=2)
        scenario.adversary("bounded", rho=0.5, sigma=2.0, rounds=ROUNDS,
                           num_destinations=3)
    elif algorithm == "greedy":
        scenario.algorithm("greedy")
        scenario.adversary("bounded", rho=0.8, sigma=3.0, rounds=ROUNDS,
                           num_destinations=3)
    else:
        scenario.algorithm("ppts")
        scenario.adversary("bounded", rho=0.8, sigma=3.0, rounds=ROUNDS,
                           num_destinations=3)
    scenario.policy(history=history, seed=seed)
    return scenario.build()


def _build_simulator(session: Session, spec: ScenarioSpec) -> Simulator:
    prepared = session.prepare(spec)
    policy = spec.policy
    return Simulator(
        prepared.topology, prepared.algorithm, prepared.adversary,
        record_history=policy.record_history,
        record_occupancy_vectors=policy.record_occupancy_vectors,
        history=policy.history,
        validate_capacity=policy.validate_capacity,
    )


def _index_views(algorithm):
    """(nonempty, bad) as ``{key: sorted positions}``, from the live index."""
    index = algorithm._index
    nonempty = {key: list(s) for key, s in index._nonempty.items() if len(s)}
    bad = {key: list(s) for key, s in index._bad.items() if len(s)}
    return nonempty, bad


def _index_from_scratch(algorithm):
    """The same views, recomputed from the buffer contents alone."""
    threshold = algorithm._index.bad_threshold
    nonempty, bad = {}, {}
    for node, node_buffer in algorithm.buffers.items():
        for key in node_buffer.keys():
            load = node_buffer.load_of(key)
            if load >= 1:
                nonempty.setdefault(key, []).append(node)
            if load >= threshold:
                bad.setdefault(key, []).append(node)
    # Buffers iterate in node order, so the lists arrive sorted.
    return nonempty, bad


@settings(max_examples=25, deadline=None)
@given(
    algorithm=st.sampled_from(["ppts", "hpts", "greedy"]),
    k=st.integers(min_value=0, max_value=ROUNDS),
    seed=st.integers(min_value=0, max_value=2**16),
    history=st.sampled_from(["summary", "streaming", "full"]),
)
def test_random_cut_points_resume_bit_identically(tmp_path_factory, algorithm,
                                                  k, seed, history):
    tmp_path = tmp_path_factory.mktemp("ckpt")
    path = str(tmp_path / "cut.ckpt")
    spec = _spec(algorithm, seed, history)
    full = Session().run(spec)
    session = Session()
    with packet_id_scope():
        simulator = _build_simulator(session, spec)
        horizon = simulator.adversary.horizon
        simulator.run(min(k, horizon), drain=False)
        save_checkpoint(simulator, path, spec=spec)
    resumed = Session().resume(path)
    assert resumed.result == full.result


@settings(max_examples=15, deadline=None)
@given(
    cuts=st.tuples(
        st.integers(min_value=0, max_value=ROUNDS),
        st.integers(min_value=0, max_value=ROUNDS),
    ).map(sorted),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_double_resume_is_idempotent(tmp_path_factory, cuts, seed):
    """save -> restore -> save -> restore: still the uninterrupted result,
    and an untouched restored engine re-saves byte-identically."""
    k1, k2 = cuts
    tmp_path = tmp_path_factory.mktemp("ckpt")
    first = str(tmp_path / "first.ckpt")
    echo = str(tmp_path / "echo.ckpt")
    second = str(tmp_path / "second.ckpt")
    spec = _spec("ppts", seed, "summary")
    full = Session().run(spec)

    session = Session()
    with packet_id_scope():
        simulator = _build_simulator(session, spec)
        horizon = simulator.adversary.horizon
        simulator.run(min(k1, horizon), drain=False)
        save_checkpoint(simulator, first, spec=spec)

    with packet_id_scope():
        restored = _build_simulator(Session(), spec)
        restore_into(restored, load_checkpoint(first))
        # Idempotence: nothing ran since the restore, so saving again must
        # reproduce the file bit for bit (deterministic format, lossless
        # restore).
        save_checkpoint(restored, echo, spec=spec)
        assert open(echo, "rb").read() == open(first, "rb").read()
        restored.run(min(k2, horizon), drain=False)
        save_checkpoint(restored, second, spec=spec)

    resumed_once = Session().resume(second)
    assert resumed_once.result == full.result
    # And resuming the *first* checkpoint still works after all of that.
    assert Session().resume(first).result == full.result


@settings(max_examples=15, deadline=None)
@given(
    algorithm=st.sampled_from(["ppts", "hpts", "greedy"]),
    k=st.integers(min_value=1, max_value=ROUNDS),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_restored_indexsets_match_from_scratch_rebuild(tmp_path_factory,
                                                       algorithm, k, seed):
    tmp_path = tmp_path_factory.mktemp("ckpt")
    path = str(tmp_path / "index.ckpt")
    spec = _spec(algorithm, seed, "summary")
    session = Session()
    with packet_id_scope():
        simulator = _build_simulator(session, spec)
        simulator.run(min(k, simulator.adversary.horizon), drain=False)
        save_checkpoint(simulator, path, spec=spec)
        live_views = _index_views(simulator.algorithm)
    with packet_id_scope():
        restored = _build_simulator(Session(), spec)
        restore_into(restored, load_checkpoint(path))
        assert _index_views(restored.algorithm) == live_views
        assert _index_views(restored.algorithm) == _index_from_scratch(
            restored.algorithm
        )
