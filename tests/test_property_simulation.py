"""Property-based end-to-end tests: random bounded adversaries vs the algorithms.

Hypothesis drives the adversary parameters (rate, burst, destination count,
routes) while a token bucket keeps every generated pattern ``(rho, sigma)``-
bounded, so each example exercises the exact hypothesis of the paper's upper
bounds.  The properties checked:

* **Conservation** — no packet is lost or duplicated: injected = delivered +
  still buffered + staged.
* **Capacity** — the simulator's validation (one packet per edge per round)
  never fires for PPTS/HPTS, i.e. Lemmas B.1 / 4.7.
* **Bounds** — the measured max occupancy never exceeds the stated bound.
* **Progress under work conservation** — greedy baselines always drain.
"""

from __future__ import annotations

import random as random_module

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.base import InjectionPattern
from repro.adversary.bounded import TokenBucket
from repro.baselines.greedy import GreedyForwarding
from repro.core.bounds import hpts_upper_bound, ppts_upper_bound, pts_upper_bound
from repro.core.hpts import HierarchicalPeakToSink
from repro.core.packet import make_injection
from repro.core.ppts import ParallelPeakToSink
from repro.core.pts import PeakToSink
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology


def _random_bounded_pattern(
    line: LineTopology,
    rho: float,
    sigma: int,
    num_rounds: int,
    destinations,
    seed: int,
) -> InjectionPattern:
    """A (rho, sigma)-bounded pattern over the given destination set."""
    rng = random_module.Random(seed)
    bucket = TokenBucket(line.num_nodes, rho, sigma)
    injections = []
    for t in range(num_rounds):
        bucket.start_round()
        for _ in range(4):
            destination = rng.choice(destinations)
            source = rng.randrange(0, destination)
            crossed = list(range(source, destination))
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                injections.append(make_injection(t, source, destination))
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def _conservation_holds(simulator: Simulator, result) -> bool:
    stored = simulator.algorithm.total_stored()
    staged = simulator.algorithm.staged_count()
    return result.packets_injected == result.packets_delivered + stored + staged


class TestPTSProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        sigma=st.integers(min_value=0, max_value=6),
        rho_percent=st.integers(min_value=30, max_value=100),
        num_rounds=st.integers(min_value=10, max_value=80),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_bound_and_conservation(self, sigma, rho_percent, num_rounds, seed):
        rho = rho_percent / 100.0
        line = LineTopology(20)
        pattern = _random_bounded_pattern(
            line, rho, sigma, num_rounds, destinations=[19], seed=seed
        )
        simulator = Simulator(line, PeakToSink(line), pattern)
        result = simulator.run()
        assert result.max_occupancy <= pts_upper_bound(sigma)
        assert _conservation_holds(simulator, result)


class TestPPTSProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        sigma=st.integers(min_value=0, max_value=4),
        num_destinations=st.integers(min_value=1, max_value=8),
        num_rounds=st.integers(min_value=10, max_value=80),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_bound_capacity_and_conservation(
        self, sigma, num_destinations, num_rounds, seed
    ):
        line = LineTopology(24)
        rng = random_module.Random(seed)
        destinations = sorted(rng.sample(range(1, 24), num_destinations))
        pattern = _random_bounded_pattern(
            line, 1.0, sigma, num_rounds, destinations, seed
        )
        simulator = Simulator(line, ParallelPeakToSink(line), pattern)
        result = simulator.run()  # validate_capacity=True: Lemma B.1 checked
        d = max(1, pattern.num_destinations)
        assert result.max_occupancy <= ppts_upper_bound(d, sigma)
        assert _conservation_holds(simulator, result)


class TestHPTSProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        sigma=st.integers(min_value=0, max_value=3),
        num_rounds=st.integers(min_value=12, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
        levels=st.sampled_from([2, 3]),
    )
    def test_bound_capacity_and_conservation(self, sigma, num_rounds, seed, levels):
        branching = 4 if levels == 2 else 3
        n = branching**levels
        line = LineTopology(n)
        rho = 1.0 / levels
        rng = random_module.Random(seed)
        destinations = sorted(rng.sample(range(1, n), min(8, n - 1)))
        pattern = _random_bounded_pattern(
            line, rho, sigma, num_rounds, destinations, seed
        )
        algorithm = HierarchicalPeakToSink(line, levels, branching, rho=rho)
        simulator = Simulator(line, algorithm, pattern)
        result = simulator.run()  # validate_capacity=True: Lemma 4.7 checked
        assert result.max_occupancy <= hpts_upper_bound(n, levels, sigma)
        assert _conservation_holds(simulator, result)


class TestGreedyProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        sigma=st.integers(min_value=0, max_value=4),
        num_rounds=st.integers(min_value=10, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_work_conserving_baselines_always_drain(self, sigma, num_rounds, seed):
        line = LineTopology(16)
        rng = random_module.Random(seed)
        destinations = sorted(rng.sample(range(1, 16), 4))
        pattern = _random_bounded_pattern(
            line, 1.0, sigma, num_rounds, destinations, seed
        )
        simulator = Simulator(line, GreedyForwarding(line), pattern)
        result = simulator.run()
        assert result.drained
        assert result.packets_delivered == result.packets_injected
