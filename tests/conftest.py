"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.packet import reset_packet_ids
from repro.network.topology import (
    LineTopology,
    binary_tree,
    caterpillar_tree,
    star_tree,
)


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    """Keep packet ids deterministic within each test."""
    reset_packet_ids()
    yield
    reset_packet_ids()


@pytest.fixture
def small_line() -> LineTopology:
    """An 8-node line, handy for hand-checkable scenarios."""
    return LineTopology(8)


@pytest.fixture
def medium_line() -> LineTopology:
    """A 32-node line for small sweeps."""
    return LineTopology(32)


@pytest.fixture
def power_line() -> LineTopology:
    """A 16-node line (2**4), compatible with the Figure 1 hierarchy."""
    return LineTopology(16)


@pytest.fixture
def small_caterpillar():
    """A caterpillar tree with an 4-node spine and 2 legs per spine node."""
    return caterpillar_tree(spine_length=4, legs_per_node=2)


@pytest.fixture
def small_star():
    """A star with 6 leaves."""
    return star_tree(6)


@pytest.fixture
def small_binary_tree():
    """A complete binary tree of depth 3 (15 nodes)."""
    return binary_tree(3)
