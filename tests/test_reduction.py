"""Unit tests for the ell-reduction (Definition 2.4, Lemma 2.5)."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.bounded import tightest_sigma
from repro.adversary.generators import random_line_adversary
from repro.adversary.reduction import (
    compressed_reduction,
    ell_reduction,
    phase_of_round,
    phase_start,
)
from repro.network.errors import ConfigurationError
from repro.network.topology import LineTopology


class TestPhaseArithmetic:
    def test_phase_of_round(self):
        assert phase_of_round(0, 4) == 0
        assert phase_of_round(3, 4) == 0
        assert phase_of_round(4, 4) == 1
        assert phase_of_round(11, 4) == 2

    def test_phase_start(self):
        assert phase_start(0, 4) == 0
        assert phase_start(3, 4) == 12

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            phase_of_round(-1, 2)
        with pytest.raises(ConfigurationError):
            phase_of_round(0, 0)
        with pytest.raises(ConfigurationError):
            phase_start(0, 0)


class TestEllReduction:
    def test_retimes_to_next_phase_start(self):
        pattern = InjectionPattern.from_tuples(
            [(0, 0, 3), (2, 0, 3), (3, 1, 3), (5, 0, 2)]
        )
        reduced = ell_reduction(pattern, ell=3)
        rounds = sorted(p.round for p in reduced.all_injections())
        # Rounds 0-2 belong to phase 0 -> accepted at round 3;
        # rounds 3-5 belong to phase 1 -> accepted at round 6.
        assert rounds == [3, 3, 6, 6]

    def test_routes_and_ids_preserved(self):
        pattern = InjectionPattern.from_tuples([(1, 2, 7)])
        original = pattern.all_injections()[0]
        reduced = ell_reduction(pattern, ell=4).all_injections()[0]
        assert (reduced.source, reduced.destination) == (2, 7)
        assert reduced.packet_id == original.packet_id

    def test_ell_one_shifts_each_round_by_one(self):
        pattern = InjectionPattern.from_tuples([(0, 0, 1), (5, 0, 1)])
        reduced = ell_reduction(pattern, ell=1)
        assert sorted(p.round for p in reduced.all_injections()) == [1, 6]

    def test_declared_rho_scaled(self):
        pattern = InjectionPattern.from_tuples([(0, 0, 1)], rho=0.25, sigma=1)
        assert ell_reduction(pattern, 4).rho == pytest.approx(1.0)
        assert ell_reduction(pattern, 4).sigma == 1

    def test_invalid_ell(self):
        with pytest.raises(ConfigurationError):
            ell_reduction(InjectionPattern([]), 0)


class TestCompressedReduction:
    def test_maps_rounds_to_phase_indices(self):
        pattern = InjectionPattern.from_tuples([(0, 0, 1), (2, 0, 1), (3, 0, 1)])
        compressed = compressed_reduction(pattern, ell=3)
        assert sorted(p.round for p in compressed.all_injections()) == [0, 0, 1]

    def test_lemma_2_5_bound_scaling(self):
        """If A is (rho, sigma)-bounded then A_ell is (ell rho, sigma)-bounded."""
        line = LineTopology(24)
        rho, sigma, ell = 0.25, 2.0, 4
        pattern = random_line_adversary(
            line, rho, sigma, num_rounds=80, num_destinations=4, seed=11
        )
        assert tightest_sigma(pattern, line, rho) <= sigma + 1e-9
        compressed = compressed_reduction(pattern, ell)
        assert tightest_sigma(compressed, line, ell * rho) <= sigma + 1e-9

    def test_lemma_2_5_multiple_parameter_sets(self):
        line = LineTopology(16)
        for rho, ell in ((0.5, 2), (1.0 / 3.0, 3), (0.2, 5)):
            pattern = random_line_adversary(
                line, rho, 1.0, num_rounds=60, num_destinations=3, seed=int(ell)
            )
            compressed = compressed_reduction(pattern, ell)
            assert tightest_sigma(compressed, line, ell * rho) <= 1.0 + 1e-9
