"""Unit tests for the durable job journal (repro.service.journal)."""

from __future__ import annotations

import struct

import pytest

from repro.service.errors import JournalCorruptError, JournalError
from repro.service.journal import JOURNAL_MAGIC, JOURNAL_VERSION, Journal

HEADER_SIZE = struct.calcsize(f"<{len(JOURNAL_MAGIC)}sI")


def make_journal(tmp_path, **kwargs):
    kwargs.setdefault("fsync", False)
    return Journal(str(tmp_path / "journal"), **kwargs)


class TestRoundTrip:
    def test_append_then_replay(self, tmp_path):
        journal = make_journal(tmp_path)
        records = [{"type": "submit", "n": i} for i in range(5)]
        for record in records:
            journal.append(record)
        assert journal.replay() == records
        journal.close()

    def test_replay_survives_reopen(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append({"a": 1})
        journal.append({"b": [1, 2, 3]})
        journal.close()
        reopened = make_journal(tmp_path)
        assert reopened.replay() == [{"a": 1}, {"b": [1, 2, 3]}]
        reopened.close()

    def test_empty_journal_replays_empty(self, tmp_path):
        journal = make_journal(tmp_path)
        assert journal.replay() == []
        journal.close()


class TestTornTail:
    """kill -9 mid-append damages at most the final record — and only that."""

    def test_truncated_frame_is_discarded_and_repaired(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append({"keep": 1})
        journal.append({"keep": 2})
        path = journal.active_path
        journal.close()
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:  # torn mid-frame: half a record
            handle.write(blob + b"\x99\x00\x00\x00\x42")
        reopened = make_journal(tmp_path)
        assert reopened.replay() == [{"keep": 1}, {"keep": 2}]
        # the tail was physically truncated, so a new append lands cleanly
        reopened.append({"keep": 3})
        assert reopened.replay() == [{"keep": 1}, {"keep": 2}, {"keep": 3}]
        reopened.close()

    def test_crc_damage_at_tail_is_discarded(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append({"keep": 1})
        journal.append({"lost": True})
        path = journal.active_path
        journal.close()
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF  # flip a byte inside the final record's payload
        open(path, "wb").write(bytes(blob))
        reopened = make_journal(tmp_path)
        assert reopened.replay() == [{"keep": 1}]
        reopened.close()

    def test_not_a_journal_file_is_typed(self, tmp_path):
        directory = tmp_path / "journal"
        directory.mkdir()
        (directory / "journal-00000001.log").write_bytes(b"garbage")
        with pytest.raises(JournalCorruptError, match="not a journal segment"):
            Journal(str(directory), fsync=False)

    def test_future_version_is_typed(self, tmp_path):
        directory = tmp_path / "journal"
        directory.mkdir()
        (directory / "journal-00000001.log").write_bytes(
            struct.pack(f"<{len(JOURNAL_MAGIC)}sI", JOURNAL_MAGIC, JOURNAL_VERSION + 1)
        )
        with pytest.raises(JournalError, match="version"):
            Journal(str(directory), fsync=False)


class TestRotation:
    def test_rotate_compacts_and_unlinks(self, tmp_path):
        journal = make_journal(tmp_path)
        for i in range(10):
            journal.append({"n": i})
        old = journal.active_path
        journal.rotate([{"type": "snapshot", "upto": 9}])
        assert journal.active_path != old
        assert journal.segments() == [journal.active_path]
        journal.append({"n": 10})
        assert journal.replay() == [{"type": "snapshot", "upto": 9}, {"n": 10}]
        journal.close()

    def test_damage_in_non_final_segment_is_typed(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append({"n": 0})
        first = journal.active_path
        journal.rotate([{"snapshot": True}])
        # Re-create a damaged older segment next to the rotated one.
        with open(first, "wb") as handle:
            handle.write(
                struct.pack(f"<{len(JOURNAL_MAGIC)}sI", JOURNAL_MAGIC, JOURNAL_VERSION)
            )
            handle.write(b"\x05\x00\x00\x00")  # truncated frame mid-log
        with pytest.raises(JournalCorruptError, match="not the final segment"):
            journal.replay()
        journal.close()

    def test_minimum_segment_size_is_validated(self, tmp_path):
        with pytest.raises(JournalError, match="max_segment_bytes"):
            Journal(str(tmp_path / "j"), fsync=False, max_segment_bytes=16)
