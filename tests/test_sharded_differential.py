"""Differential proof for the sharded engine.

The acceptance claim of the sharded execution layer is *bit-identical
results*: for every bundled line algorithm x adversary family x history mode,
``shards=k`` (k in {2, 3, 4}) produces a :class:`SimulationResult` equal —
field for field, including per-round history records and per-node occupancy
maxima — to the ``shards=1`` single-process run.

The matrix runs on the in-process transport (same segment engines, same
superstep protocol, no pipes) so it stays fast and deterministic; a
representative slice re-runs on real worker processes in
``test_sharded_engine.py``.
"""

from __future__ import annotations

import pytest

from repro.api import Scenario, ScenarioSpec, Session
from repro.network.sharded import run_sharded

N = 16
ROUNDS = 30
SHARD_COUNTS = (2, 3, 4)
HISTORIES = ("summary", "streaming", "full")

#: The six bundled line algorithms with their builder params.  PTS, the
#: locality rules and downhill are single-destination; PPTS/HPTS/greedy get a
#: three-destination workload.  HPTS needs rho * levels <= 1.
ALGORITHMS = {
    "pts": {"spec": ("pts", {}), "multi": False, "rho": 0.8},
    "ppts": {"spec": ("ppts", {}), "multi": True, "rho": 0.8},
    "hpts": {"spec": ("hpts", {"levels": 2}), "multi": True, "rho": 0.5},
    "local": {"spec": ("local", {"locality": 2}), "multi": False, "rho": 0.8},
    "downhill": {"spec": ("downhill", {}), "multi": False, "rho": 0.8},
    "greedy": {"spec": ("greedy", {}), "multi": True, "rho": 0.8},
}

#: Four adversary families: steady random, the harshest feasible burst
#: pattern, silence-then-burst, and the bucketless O(1)-per-round trickle.
ADVERSARIES = ("random", "saturating", "bursty", "trickle")


def _adversary_call(name: str, multi: bool, stream: bool):
    params = {"stream": True} if stream else {}
    if name == "random":
        registry_name = "bounded" if multi else "single"
        if multi:
            params["num_destinations"] = 3
    elif name in ("saturating", "bursty"):
        registry_name = name
        params["num_destinations"] = 3 if multi else 1
    else:
        registry_name = "trickle"
        if multi:
            params["destinations"] = [6, 11, N - 1]
    return registry_name, params


def _build_spec(algorithm: str, adversary: str, history: str, *,
                shards=None, seed: int = 17) -> ScenarioSpec:
    config = ALGORITHMS[algorithm]
    name, algo_params = config["spec"]
    stream = history == "streaming"
    adversary_name, adversary_params = _adversary_call(
        adversary, config["multi"], stream
    )
    scenario = Scenario.line(N).algorithm(name, **algo_params)
    scenario.adversary(
        adversary_name, rho=config["rho"], sigma=3.0, rounds=ROUNDS,
        **adversary_params,
    )
    policy = {"seed": seed}
    if history == "full":
        policy["record_history"] = True
    elif history == "streaming":
        policy["history"] = "streaming"
    if shards is not None:
        policy["shards"] = shards
    scenario.policy(**policy)
    return scenario.build()


@pytest.mark.parametrize("adversary", ADVERSARIES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_sharded_results_are_bit_identical(algorithm, adversary):
    """shards in {2, 3, 4} x histories == shards=1, field for field."""
    for history in HISTORIES:
        spec = _build_spec(algorithm, adversary, history)
        baseline = Session().run(spec).result
        for shards in SHARD_COUNTS:
            sharded, _extras = run_sharded(
                spec, shards=shards, transport="local"
            )
            assert sharded == baseline, (
                f"{algorithm}/{adversary}/{history} diverged at shards={shards}"
            )


def test_full_history_with_occupancy_vectors_matches():
    """Per-round occupancy vectors (the numpy bulk path) merge exactly."""
    spec = (
        Scenario.line(N)
        .algorithm("ppts")
        .adversary("bounded", rho=0.8, sigma=3.0, rounds=ROUNDS,
                   num_destinations=3)
        .policy(seed=23, record_history=True, record_occupancy_vectors=True)
        .build()
    )
    baseline = Session().run(spec).result
    for shards in SHARD_COUNTS:
        sharded, _ = run_sharded(spec, shards=shards, transport="local")
        assert sharded == baseline
        assert sharded.history[0].occupancy == baseline.history[0].occupancy


def test_session_routes_shards_and_reports_identical_bounds():
    """policy.shards > 1 routes through Session transparently: same result,
    same bound (PPTS's discovered destination set is folded globally)."""
    sharded_spec = _build_spec("ppts", "random", "summary", shards=3)
    single_spec = _build_spec("ppts", "random", "summary")
    sharded = Session().run(sharded_spec)
    single = Session().run(single_spec)
    assert sharded.result == single.result
    assert sharded.bound == single.bound
    assert sharded.within_bound == single.within_bound


def test_policy_rounds_override_and_no_drain_match():
    """rounds overrides and drain=False flow through the coordinator."""
    base = _build_spec("greedy", "bursty", "summary")
    spec = Scenario.from_spec(base).policy(rounds=11, drain=False).build()
    baseline = Session().run(spec).result
    sharded, _ = run_sharded(spec, shards=3, transport="local")
    assert sharded == baseline
    assert sharded.rounds_executed == 11


# ---------------------------------------------------------------------------
# Segment-boundary edge cases (deterministic explicit schedules)
# ---------------------------------------------------------------------------


def _explicit_spec(num_nodes: int, routes, *, algorithm=("ppts", {}),
                   shards=None) -> ScenarioSpec:
    name, params = algorithm
    scenario = Scenario.line(num_nodes).algorithm(name, **params)
    scenario.adversary(
        "explicit", rho=1.0, sigma=4.0, rounds=max(r for r, _s, _d in routes) + 1,
        routes=[list(route) for route in routes],
    )
    if shards is not None:
        scenario.policy(shards=shards)
    return scenario.build()


def test_packets_injected_exactly_at_shard_boundaries():
    """n=8, shards=2 splits at 3|4: inject at both boundary nodes, route
    across the boundary, and deliver exactly onto the boundary node."""
    routes = [
        (0, 3, 5),   # injected at segment 0's last node, crosses the boundary
        (0, 4, 7),   # injected at segment 1's first node
        (1, 2, 4),   # delivered exactly at the boundary node (absorbed there)
        (2, 3, 4),   # one-hop hand-off: last node -> first node
        (3, 0, 4),
        (4, 3, 8),   # boundary node to the virtual sink
    ]
    # Greedy is work-conserving, so every one of these packets actually
    # traverses its boundary-crossing route (PPTS would quiesce: isolated
    # packets never make a buffer bad).
    spec = _explicit_spec(8, routes, algorithm=("greedy", {}))
    baseline = Session().run(spec).result
    for shards in (2, 4, 8):
        sharded, _ = run_sharded(spec, shards=shards, transport="local")
        assert sharded == baseline
    assert baseline.packets_delivered == len(routes)


def test_width_one_segments():
    """Every segment one node wide: each round every packet is a hand-off."""
    routes = [(0, 0, 5), (0, 1, 4), (1, 0, 3), (2, 2, 5), (3, 0, 5)]
    spec = _explicit_spec(6, routes, algorithm=("greedy", {}))
    baseline = Session().run(spec).result
    sharded, _ = run_sharded(spec, shards=6, transport="local")
    assert sharded == baseline
    assert baseline.drained


def test_more_shards_than_nodes_degrades_gracefully():
    """shards > n clamps to one node per worker instead of failing."""
    routes = [(0, 0, 3), (1, 1, 4), (2, 0, 2)]
    spec = _explicit_spec(4, routes, algorithm=("greedy", {}))
    baseline = Session().run(spec).result
    sharded, extras = run_sharded(spec, shards=9, transport="local")
    assert sharded == baseline
    assert len(extras["segments"]) == 4
    # And through the Session front door too.
    report = Session().run(_explicit_spec(4, routes, algorithm=("greedy", {}),
                                          shards=9))
    assert report.result == baseline
