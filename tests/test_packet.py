"""Unit tests for the packet model (repro.core.packet)."""

from __future__ import annotations

import pytest

from repro.core.packet import (
    Injection,
    Packet,
    PacketState,
    make_injection,
    reset_packet_ids,
)


class TestInjection:
    def test_fields_match_paper_triple(self):
        injection = Injection(round=3, source=1, destination=7, packet_id=0)
        assert injection.round == 3
        assert injection.source == 1
        assert injection.destination == 7

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            Injection(round=-1, source=0, destination=1)

    def test_path_length_on_line(self):
        assert Injection(0, 2, 9).path_length == 7

    def test_with_round_preserves_route_and_id(self):
        original = Injection(5, 1, 4, packet_id=42)
        retimed = original.with_round(10)
        assert retimed.round == 10
        assert retimed.source == original.source
        assert retimed.destination == original.destination
        assert retimed.packet_id == original.packet_id

    def test_ordering_is_by_round_first(self):
        earlier = Injection(1, 9, 10, packet_id=5)
        later = Injection(2, 0, 1, packet_id=0)
        assert earlier < later

    def test_injections_are_hashable(self):
        a = Injection(0, 1, 2, packet_id=1)
        b = Injection(0, 1, 2, packet_id=1)
        assert len({a, b}) == 1


class TestMakeInjection:
    def test_ids_are_unique_and_increasing(self):
        first = make_injection(0, 0, 1)
        second = make_injection(0, 0, 1)
        assert first.packet_id != second.packet_id
        assert second.packet_id > first.packet_id

    def test_reset_restarts_ids(self):
        make_injection(0, 0, 1)
        reset_packet_ids()
        fresh = make_injection(0, 0, 1)
        assert fresh.packet_id == 0


class TestPacket:
    def test_from_injection_starts_at_source(self):
        packet = Packet.from_injection(make_injection(2, 3, 8))
        assert packet.location == 3
        assert packet.state is PacketState.IN_TRANSIT
        assert packet.hops == 0

    def test_staged_creation(self):
        packet = Packet.from_injection(make_injection(0, 0, 4), staged=True)
        assert packet.state is PacketState.STAGED
        packet.accept(3)
        assert packet.state is PacketState.IN_TRANSIT
        assert packet.accepted_round == 3

    def test_advance_updates_location_and_hops(self):
        packet = Packet.from_injection(make_injection(0, 1, 5))
        packet.advance(2)
        packet.advance(3)
        assert packet.location == 3
        assert packet.hops == 2

    def test_deliver_sets_latency(self):
        packet = Packet.from_injection(make_injection(4, 0, 3))
        packet.advance(1)
        packet.advance(2)
        packet.advance(3)
        packet.deliver(10)
        assert packet.delivered
        assert packet.delivered_round == 10
        assert packet.latency == 6

    def test_latency_none_before_delivery(self):
        packet = Packet.from_injection(make_injection(0, 0, 3))
        assert packet.latency is None

    def test_remaining_distance(self):
        packet = Packet.from_injection(make_injection(0, 2, 7))
        assert packet.remaining_distance == 5
        packet.advance(3)
        assert packet.remaining_distance == 4
        packet.advance(4)
        packet.advance(5)
        packet.advance(6)
        packet.advance(7)
        packet.deliver(5)
        assert packet.remaining_distance == 0

    def test_convenience_accessors(self):
        injection = make_injection(7, 2, 9)
        packet = Packet.from_injection(injection)
        assert packet.source == 2
        assert packet.destination == 9
        assert packet.injected_round == 7
        assert packet.packet_id == injection.packet_id
