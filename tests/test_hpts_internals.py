"""White-box tests of HPTS internals: classification, scheduling, FormPaths, pre-bad.

The end-to-end Theorem 4.1 tests live in ``test_hpts.py``; these tests pin the
behaviour of the individual mechanisms on hand-built configurations so a
regression in one mechanism is reported at the mechanism, not as a distant
bound violation.
"""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.core.hpts import HierarchicalPeakToSink
from repro.core.packet import Packet, make_injection
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology


def _hpts(n=16, levels=4, branching=2, **kwargs) -> HierarchicalPeakToSink:
    return HierarchicalPeakToSink(LineTopology(n), levels, branching, **kwargs)


def _store(algorithm: HierarchicalPeakToSink, node: int, destination: int, count: int = 1):
    """Place packets directly into the algorithm's buffers (bypassing staging)."""
    for _ in range(count):
        packet = Packet.from_injection(make_injection(0, node, destination))
        packet.location = node
        algorithm.buffers[node].store(packet, algorithm.classify(packet, node))


class TestClassification:
    def test_keys_follow_the_segment_decomposition(self):
        algorithm = _hpts()
        packet = Packet.from_injection(make_injection(0, 2, 13))
        # At node 2 the packet is on its level-3 segment toward 8.
        assert algorithm.classify(packet, 2) == (3, 8)
        # At node 8 it has switched to the level-2 segment toward 12.
        assert algorithm.classify(packet, 8) == (2, 12)
        # At node 12 only the last digit differs: level 0, destination 13.
        assert algorithm.classify(packet, 12) == (0, 13)

    def test_virtual_sink_destination_maps_to_top_level(self):
        algorithm = _hpts()
        packet = Packet.from_injection(make_injection(0, 3, 16))
        assert algorithm.classify(packet, 3) == (3, 16)


class TestLevelSchedule:
    def test_descending_schedule(self):
        algorithm = _hpts(level_schedule="descending")
        assert [algorithm._level_for_round(t) for t in range(4)] == [3, 2, 1, 0]
        assert algorithm._level_for_round(4) == 3

    def test_ascending_schedule(self):
        algorithm = _hpts(level_schedule="ascending")
        assert [algorithm._level_for_round(t) for t in range(4)] == [0, 1, 2, 3]


class TestFormPaths:
    def test_activates_interval_from_leftmost_bad_buffer(self):
        algorithm = _hpts(batch_acceptance=False)
        # Two level-3 packets at node 1 (bad), one at node 5 (same key): the
        # whole stretch [1, 7] of that pseudo-buffer activates when level 3 is
        # served.
        _store(algorithm, 1, 13, count=2)   # key (3, 8)
        _store(algorithm, 5, 13, count=1)   # key (3, 8)
        level3_round = 0  # descending schedule serves level 3 first
        activations = algorithm.select_activations(level3_round)
        activated_nodes = {a.node for a in activations if a.key == (3, 8)}
        assert 1 in activated_nodes
        assert 5 in activated_nodes
        assert 0 not in activated_nodes  # left of the left-most bad buffer

    def test_no_badness_means_no_activation(self):
        algorithm = _hpts(batch_acceptance=False)
        _store(algorithm, 1, 13, count=1)
        assert algorithm.select_activations(0) == []

    def test_wrong_level_round_does_not_touch_other_levels(self):
        algorithm = _hpts(batch_acceptance=False)
        _store(algorithm, 12, 13, count=2)  # key (0, 13): level 0
        # Round 0 serves level 3 (descending): the level-0 badness must wait.
        assert algorithm.select_activations(0) == []
        # Round 3 serves level 0.
        activations = algorithm.select_activations(3)
        assert {a.node for a in activations} == {12}

    def test_disjoint_intervals_activate_in_parallel(self):
        algorithm = _hpts(batch_acceptance=False)
        # Level-1 intervals are [0,3], [4,7], [8,11], [12,15]; make a bad
        # level-1 pseudo-buffer in two different intervals.
        _store(algorithm, 0, 3, count=2)    # key (1, 2), interval [0, 3]
        _store(algorithm, 8, 11, count=2)   # key (1, 10), interval [8, 11]
        activations = algorithm.select_activations(2)  # level 1 round
        nodes = {a.node for a in activations}
        assert 0 in nodes and 8 in nodes


class TestPreBadActivation:
    def _loaded_algorithm(self, activate_pre_bad=True):
        algorithm = _hpts(batch_acceptance=False, activate_pre_bad=activate_pre_bad)
        # A bad level-3 pseudo-buffer at node 7 whose head packet's
        # intermediate destination is node 8 (the left endpoint of the level-2
        # interval [8, 15]); node 8 already holds a packet in the pseudo-buffer
        # that arrival would join -> the arriving packet is pre-bad.
        _store(algorithm, 7, 13, count=2)   # key (3, 8), about to hand off at 8
        _store(algorithm, 8, 13, count=1)   # key (2, 12) at node 8
        return algorithm

    def test_hand_off_triggers_lower_level_activation(self):
        algorithm = self._loaded_algorithm(activate_pre_bad=True)
        activations = algorithm.select_activations(0)  # level 3 round
        keys_by_node = {}
        for activation in activations:
            keys_by_node.setdefault(activation.node, set()).add(activation.key)
        assert (3, 8) in keys_by_node.get(7, set())
        # Pre-bad cascade: node 8's level-2 pseudo-buffer is activated in the
        # same round even though level 2 is not the round's level.
        assert (2, 12) in keys_by_node.get(8, set())

    def test_ablation_switch_disables_the_cascade(self):
        algorithm = self._loaded_algorithm(activate_pre_bad=False)
        activations = algorithm.select_activations(0)
        assert all(a.key != (2, 12) for a in activations)

    def test_no_cascade_when_target_pseudo_buffer_is_empty(self):
        algorithm = _hpts(batch_acceptance=False)
        _store(algorithm, 7, 13, count=2)   # hand-off at 8, but 8 is empty
        activations = algorithm.select_activations(0)
        assert all(a.node != 8 for a in activations)


class TestStagingLifecycle:
    def test_staged_packets_survive_drain_and_get_accepted(self):
        line = LineTopology(16)
        algorithm = HierarchicalPeakToSink(line, 4, 2)
        # A packet injected in the last round of a phase is accepted at the
        # next phase boundary even though no further injections occur.
        pattern = InjectionPattern.from_tuples([(3, 0, 15)])
        simulator = Simulator(line, algorithm, pattern)
        result = simulator.run()
        assert result.max_staged == 1
        assert algorithm.staged_count() == 0
        # Conservation: the packet is either delivered or still buffered.
        assert result.packets_injected == 1
        assert result.packets_delivered + algorithm.total_stored() == 1
