"""Differential proof for the batch x sharded engine.

The tentpole claim of the batch-sharded execution layer is the same as the
sharded engine's, one level up: ``engine="batch"`` with ``shards=k``
(k in {2, 3, 4}) produces a :class:`SimulationResult` equal — field for
field, including per-round history records and per-node occupancy maxima —
to the ``shards=1`` delta-engine run, across the whole vectorized family
({PTS, work-conserving PTS, local, downhill, greedy} x {trickle, random,
explicit} x three history modes), on every transport:

* ``local``        — relay mode, in-process (the fast full matrix);
* ``processes``    + ``shm=False`` — relay mode over real pipes;
* ``processes``    + ``shm=True``  — window mode over shared-memory rings,
  the k-round free-running path this PR adds.

Beyond the result record, the stitched checkpoint's decoded *packet table*
(every ``packets/*`` int64 column) must match the single-process
checkpoint's bit for bit, and an injected worker crash mid-window must
recover to the identical result.
"""

from __future__ import annotations

import pytest

from repro.api import Scenario, ScenarioSpec, Session
from repro.checkpoint import load_checkpoint
from repro.network.errors import UnbatchableScenarioError
from repro.network.faults import FaultEvent, FaultPlan
from repro.network.sharded import run_sharded

N = 16
ROUNDS = 60
#: Small enough that a 60-round horizon spans several windows plus a
#: ragged drain tail; coprime with the checkpoint cadence used below.
BATCH_ROUNDS = 13
SHARD_COUNTS = (2, 3, 4)
HISTORIES = ("summary", "streaming", "full")

#: The regular family the batch kernel vectorizes, with builder params.
#: Work-conserving PTS exercises the reverse boundary lane (suffix badness
#: chained right-to-left); downhill exercises the other reverse-lane user.
ALGORITHMS = {
    "pts": {"spec": ("pts", {}), "multi": False},
    "pts_wc": {"spec": ("pts", {"work_conserving": True}), "multi": False},
    "local": {"spec": ("local", {"locality": 2}), "multi": False},
    "downhill": {"spec": ("downhill", {}), "multi": False},
    "greedy": {"spec": ("greedy", {}), "multi": True},
}

ADVERSARIES = ("trickle", "random", "explicit")

#: Explicit schedule with round-0 bursts, repeated sources, boundary-node
#: injections at every 16/k split point (3|4, 5|6, 7|8, 10|11, 11|12) and a
#: long silent gap before a late straggler (drain-tail coverage).
_EXPLICIT_ROUTES = [
    (0, 0, N - 1), (0, 0, N - 1), (0, 3, N - 1), (1, 4, N - 1),
    (2, 5, N - 1), (3, 7, N - 1), (3, 8, N - 1), (5, 10, N - 1),
    (8, 11, N - 1), (8, 12, N - 1), (21, 1, N - 1), (40, 14, N - 1),
]


def _adversary_call(name: str, multi: bool, stream: bool):
    params = {"stream": True} if stream else {}
    if name == "random":
        registry_name = "bounded" if multi else "single"
        if multi:
            params["num_destinations"] = 3
    elif name == "explicit":
        registry_name = "explicit"
        params = {}  # explicit rows are already materialized
        params["routes"] = [list(route) for route in _EXPLICIT_ROUTES]
    else:
        registry_name = "trickle"
        if multi:
            params["destinations"] = [6, 11, N - 1]
    return registry_name, params


def _build_spec(algorithm: str, adversary: str, history: str, *,
                engine: str = "batch", seed: int = 17,
                **policy_extra) -> ScenarioSpec:
    config = ALGORITHMS[algorithm]
    name, algo_params = config["spec"]
    stream = history == "streaming"
    adversary_name, adversary_params = _adversary_call(
        adversary, config["multi"], stream
    )
    rho = 1.0 if adversary == "explicit" else 0.8
    sigma = 4.0 if adversary == "explicit" else 3.0
    scenario = Scenario.line(N).algorithm(name, **algo_params)
    scenario.adversary(
        adversary_name, rho=rho, sigma=sigma, rounds=ROUNDS,
        **adversary_params,
    )
    policy = {"seed": seed, "engine": engine, "batch_rounds": BATCH_ROUNDS}
    if history == "full":
        policy["record_history"] = True
    elif history == "streaming":
        policy["history"] = "streaming"
    policy.update(policy_extra)
    scenario.policy(**policy)
    return scenario.build()


def _delta_baseline(algorithm: str, adversary: str, history: str,
                    **policy_extra):
    spec = _build_spec(algorithm, adversary, history, engine="delta",
                       **policy_extra)
    return Session().run(spec).result


# ---------------------------------------------------------------------------
# The full matrix on the in-process transport (relay mode)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("adversary", ADVERSARIES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_batch_sharded_matrix_local(algorithm, adversary):
    """engine=batch, shards in {2,3,4} x histories == shards=1 delta."""
    for history in HISTORIES:
        baseline = _delta_baseline(algorithm, adversary, history)
        spec = _build_spec(algorithm, adversary, history)
        for shards in SHARD_COUNTS:
            sharded, extras = run_sharded(spec, shards=shards,
                                          transport="local")
            assert sharded == baseline, (
                f"{algorithm}/{adversary}/{history} diverged at "
                f"shards={shards}"
            )
            assert extras["engine"]["selected"] == "batch"
            assert extras["engine"]["transport"] == "local"


# ---------------------------------------------------------------------------
# Real worker processes: pipe relay and shared-memory window mode
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_processes_transport_both_paths(algorithm):
    """shm rings (window mode) and pipes (relay) both match the oracle."""
    baseline = _delta_baseline(algorithm, "trickle", "full")
    spec = _build_spec(algorithm, "trickle", "full")
    for shm, transport_label in ((True, "shm"), (False, "processes")):
        sharded, extras = run_sharded(
            spec, shards=3, transport="processes", shm=shm
        )
        assert sharded == baseline, (
            f"{algorithm} diverged on processes transport (shm={shm})"
        )
        assert extras["engine"]["transport"] == transport_label


def test_shard_counts_on_shm_transport():
    """Window mode across every acceptance shard count."""
    baseline = _delta_baseline("pts", "random", "summary")
    spec = _build_spec("pts", "random", "summary")
    for shards in SHARD_COUNTS:
        sharded, extras = run_sharded(
            spec, shards=shards, transport="processes", shm=True
        )
        assert sharded == baseline, f"shards={shards} diverged over shm"
        assert extras["engine"]["transport"] == "shm"


# ---------------------------------------------------------------------------
# Stitched checkpoints: resume equality and the decoded packet table
# ---------------------------------------------------------------------------


def _checkpoint_spec(history: str, path: str, engine: str) -> ScenarioSpec:
    return _build_spec(
        "pts", "random", history, engine=engine,
        checkpoint_every=20, checkpoint_path=path,
    )


@pytest.mark.parametrize("history", HISTORIES)
def test_stitched_checkpoint_matches_single_process(history, tmp_path):
    """The stitched cut equals the single-process checkpoint: same engine
    counters, same decoded ``packets/*`` columns (the packet table), and a
    resume from it finishes bit-identically."""
    single_path = str(tmp_path / "single.ckpt")
    sharded_path = str(tmp_path / "sharded.ckpt")
    baseline_spec = _checkpoint_spec(history, single_path, "delta")
    baseline = Session().run(baseline_spec).result

    spec = _checkpoint_spec(history, sharded_path, "batch")
    for transport, shm in (("local", None), ("processes", True)):
        sharded, _ = run_sharded(
            spec, shards=3, transport=transport, shm=shm
        )
        assert sharded == baseline

        stitched = load_checkpoint(sharded_path)
        single = load_checkpoint(single_path)
        assert stitched.round == single.round
        for field in ("round", "injected", "delivered", "latency_sum",
                      "latency_max", "num_nodes"):
            assert stitched.header["engine"][field] == \
                single.header["engine"][field]
        assert stitched.header["next_packet_id"] == \
            single.header["next_packet_id"]
        assert set(stitched.sections) == set(single.sections)
        for name in single.sections:
            if name.startswith("timeline/"):
                continue  # row order is stitch-dependent; compared below
            assert stitched.sections[name] == single.sections[name], (
                f"checkpoint section {name!r} diverged "
                f"({transport} transport)"
            )
        # The timeline rows are (node, load) pairs whose order depends on
        # how segments were stitched (true of the delta stitcher as well);
        # resume re-aggregates them, so compare as multisets.
        assert sorted(zip(stitched.section("timeline/nodes"),
                          stitched.section("timeline/loads"))) == \
            sorted(zip(single.section("timeline/nodes"),
                       single.section("timeline/loads")))

        resumed = Session().resume(sharded_path)
        assert resumed.result == baseline


# ---------------------------------------------------------------------------
# Injected worker crash mid-window
# ---------------------------------------------------------------------------


def _crash_plan(round_number: int = 33, segment: int = 1) -> FaultPlan:
    return FaultPlan(events=(
        FaultEvent(kind="crash", round=round_number, segment=segment,
                   phase="begin"),
    ))


@pytest.mark.parametrize("transport,shm", [("local", None),
                                           ("processes", True),
                                           ("processes", False)])
def test_injected_crash_recovers_bit_identically(transport, shm, tmp_path):
    """A worker crash mid-window restarts from the checkpoint cut and the
    run still finishes bit-identical to the fault-free delta oracle."""
    path = str(tmp_path / "crash.ckpt")
    baseline = _delta_baseline("pts", "random", "full")
    spec = _build_spec("pts", "random", "full", recovery="restart",
                       checkpoint_every=20, checkpoint_path=path)
    sharded, extras = run_sharded(
        spec, shards=3, transport=transport, shm=shm,
        faults=_crash_plan(),
    )
    assert sharded == baseline
    assert extras["recovery"]["restarts"] >= 1


def test_injected_crash_fold_recovery_matches():
    """Fold recovery (no checkpoint: merge the dead segment into a
    neighbour and restitch) also preserves bit-identity in batch mode."""
    baseline = _delta_baseline("greedy", "trickle", "summary")
    spec = _build_spec("greedy", "trickle", "summary", recovery="fold")
    sharded, extras = run_sharded(
        spec, shards=3, transport="local", faults=_crash_plan(),
    )
    assert sharded == baseline
    assert len(extras["segments"]) == 2  # one fold happened


# ---------------------------------------------------------------------------
# Engine routing telemetry
# ---------------------------------------------------------------------------


def test_auto_engine_falls_back_with_reason():
    """engine=auto on an unbatchable algorithm runs delta workers and
    surfaces the refusal verbatim in extras['engine']."""
    spec = (
        Scenario.line(N)
        .algorithm("hpts", levels=2)
        .adversary("bounded", rho=0.4, sigma=3.0, rounds=ROUNDS,
                   num_destinations=3)
        .policy(seed=17, engine="auto")
        .build()
    )
    baseline_spec = Scenario.from_spec(spec).policy(engine="delta").build()
    baseline = Session().run(baseline_spec).result
    sharded, extras = run_sharded(spec, shards=3, transport="local")
    assert sharded == baseline
    engine = extras["engine"]
    assert engine["requested"] == "auto"
    assert engine["selected"] == "delta"
    assert "batch kernel" in engine["fallback_reason"]


def test_batch_engine_refuses_unbatchable_scenario():
    spec = (
        Scenario.line(N)
        .algorithm("hpts", levels=2)
        .adversary("bounded", rho=0.4, sigma=3.0, rounds=ROUNDS,
                   num_destinations=3)
        .policy(seed=17, engine="batch")
        .build()
    )
    with pytest.raises(UnbatchableScenarioError):
        run_sharded(spec, shards=3, transport="local")


def test_auto_selects_batch_for_regular_family():
    spec = _build_spec("local", "trickle", "summary", engine="auto")
    baseline = _delta_baseline("local", "trickle", "summary")
    sharded, extras = run_sharded(spec, shards=2, transport="local")
    assert sharded == baseline
    assert extras["engine"]["selected"] == "batch"
    assert extras["engine"]["fallback_reason"] is None


# ---------------------------------------------------------------------------
# Window-geometry edges
# ---------------------------------------------------------------------------


def test_rounds_override_and_no_drain_cut_windows_cleanly():
    """A horizon that is not a multiple of batch_rounds truncates the last
    window; drain=False must not run a single drain round."""
    baseline_spec = Scenario.from_spec(
        _build_spec("greedy", "random", "summary", engine="delta")
    ).policy(rounds=17, drain=False).build()
    baseline = Session().run(baseline_spec).result
    spec = Scenario.from_spec(
        _build_spec("greedy", "random", "summary")
    ).policy(rounds=17, drain=False).build()
    sharded, _ = run_sharded(spec, shards=3, transport="local")
    assert sharded == baseline
    assert sharded.rounds_executed == 17


def test_batch_rounds_one_degenerates_to_lockstep():
    """batch_rounds=1 must behave exactly like the per-round engine."""
    baseline = _delta_baseline("pts", "random", "full")
    spec = _build_spec("pts", "random", "full", batch_rounds=1)
    sharded, _ = run_sharded(spec, shards=3, transport="local")
    assert sharded == baseline


def test_width_one_segments_batch():
    """Every segment one node wide: each round every forward is a hand-off
    block through the boundary protocol."""
    routes = [(0, 0, 5), (0, 1, 4), (1, 0, 3), (2, 2, 5), (3, 0, 5)]
    scenario = Scenario.line(6).algorithm("greedy")
    scenario.adversary("explicit", rho=1.0, sigma=4.0,
                       rounds=max(r for r, _s, _d in routes) + 1,
                       routes=[list(route) for route in routes])
    scenario.policy(seed=3, engine="batch", batch_rounds=BATCH_ROUNDS)
    spec = scenario.build()
    baseline_spec = Scenario.from_spec(spec).policy(engine="delta").build()
    baseline = Session().run(baseline_spec).result
    sharded, _ = run_sharded(spec, shards=6, transport="local")
    assert sharded == baseline
    assert baseline.drained
