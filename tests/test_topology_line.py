"""Unit tests for the line topology (repro.network.topology.LineTopology)."""

from __future__ import annotations

import pytest

from repro.network.errors import TopologyError
from repro.network.topology import LineTopology


class TestConstruction:
    def test_nodes_and_edges(self):
        line = LineTopology(5)
        assert list(line.nodes) == [0, 1, 2, 3, 4]
        assert list(line.edges) == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert line.num_nodes == 5
        assert line.num_edges == 4

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            LineTopology(1)


class TestRouting:
    def test_next_hop_interior(self):
        line = LineTopology(6)
        assert line.next_hop(2) == 3

    def test_next_hop_last_node_virtual_sink(self):
        line = LineTopology(6, allow_virtual_sink=True)
        assert line.next_hop(5) == 6

    def test_next_hop_last_node_without_sink(self):
        line = LineTopology(6, allow_virtual_sink=False)
        assert line.next_hop(5) is None

    def test_next_hop_out_of_range(self):
        line = LineTopology(4)
        with pytest.raises(TopologyError):
            line.next_hop(4)

    def test_path_inclusive(self):
        line = LineTopology(8)
        assert line.path(2, 5) == [2, 3, 4, 5]

    def test_path_to_virtual_sink(self):
        line = LineTopology(4, allow_virtual_sink=True)
        assert line.path(2, 4) == [2, 3, 4]

    def test_distance(self):
        line = LineTopology(10)
        assert line.distance(3, 9) == 6

    def test_backward_route_rejected(self):
        line = LineTopology(6)
        with pytest.raises(TopologyError):
            line.path(4, 2)

    def test_self_route_rejected(self):
        line = LineTopology(6)
        with pytest.raises(TopologyError):
            line.validate_route(3, 3)

    def test_destination_beyond_sink_rejected(self):
        line = LineTopology(6, allow_virtual_sink=True)
        with pytest.raises(TopologyError):
            line.validate_route(0, 7)

    def test_virtual_sink_destination_rejected_when_disabled(self):
        line = LineTopology(6, allow_virtual_sink=False)
        with pytest.raises(TopologyError):
            line.validate_route(0, 6)


class TestPathContains:
    def test_buffers_crossed_excludes_destination(self):
        line = LineTopology(10)
        assert list(line.buffers_crossed(2, 5)) == [2, 3, 4]
        assert line.path_contains(2, 5, 2)
        assert line.path_contains(2, 5, 4)
        assert not line.path_contains(2, 5, 5)
        assert not line.path_contains(2, 5, 1)

    def test_path_contains_matches_crossed_range(self):
        line = LineTopology(12)
        for source in range(0, 6):
            for destination in range(source + 1, 12):
                crossed = set(line.buffers_crossed(source, destination))
                for v in range(12):
                    assert line.path_contains(source, destination, v) == (v in crossed)


class TestExport:
    def test_to_networkx_shape(self):
        graph = LineTopology(7).to_networkx()
        assert graph.number_of_nodes() == 7
        assert graph.number_of_edges() == 6
        assert all(v == u + 1 for u, v in graph.edges)
