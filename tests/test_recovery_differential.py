"""Differential proof for the fault-tolerant sharded runtime.

The recovery layer's acceptance claim mirrors the sharded engine's own: a
chaos run — same spec, plus an injected worker failure — must produce a
:class:`SimulationResult` equal field-for-field to its fault-free twin,
*and* the final stitched checkpoint file must be byte-identical.  The fault
plan lives in :class:`~repro.network.sharded.ExecutionPolicy`, never in the
spec, so the two runs share specs, spec hashes and checkpoint headers by
construction; everything that could diverge is the recovery machinery.

The matrix covers every bundled line algorithm x two adversary families x
two history modes x both elastic recovery strategies (``restart`` respawns
the dead worker, ``fold`` merges its segment into a neighbour), all on the
in-process transport.  The process-transport crash/heartbeat paths are
exercised in ``test_sharded_engine.py``.
"""

from __future__ import annotations

import pytest

from repro.api import Scenario, ScenarioSpec
from repro.network.errors import RecoveryExhaustedError, WorkerFailedError
from repro.network.faults import FaultEvent, FaultPlan
from repro.network.sharded import run_sharded

N = 16
ROUNDS = 30
SHARDS = 3
HISTORIES = ("summary", "streaming")
MODES = ("restart", "fold")

ALGORITHMS = {
    "pts": {"spec": ("pts", {}), "multi": False, "rho": 0.8},
    "ppts": {"spec": ("ppts", {}), "multi": True, "rho": 0.8},
    "hpts": {"spec": ("hpts", {"levels": 2}), "multi": True, "rho": 0.5},
    "local": {"spec": ("local", {"locality": 2}), "multi": False, "rho": 0.8},
    "downhill": {"spec": ("downhill", {}), "multi": False, "rho": 0.8},
    "greedy": {"spec": ("greedy", {}), "multi": True, "rho": 0.8},
}

ADVERSARIES = ("saturating", "bursty")


def _build_spec(algorithm: str, adversary: str, history: str, *,
                recovery: str, checkpoint_path: str,
                checkpoint_every: int = 7, max_worker_restarts: int = 3,
                rounds: int = ROUNDS, seed: int = 17) -> ScenarioSpec:
    config = ALGORITHMS[algorithm]
    name, algo_params = config["spec"]
    scenario = Scenario.line(N).algorithm(name, **algo_params)
    adversary_params = {"num_destinations": 3 if config["multi"] else 1}
    if history == "streaming":
        adversary_params["stream"] = True
    scenario.adversary(
        adversary, rho=config["rho"], sigma=3.0, rounds=rounds,
        **adversary_params,
    )
    policy = {
        "seed": seed,
        "shards": SHARDS,
        "checkpoint_every": checkpoint_every,
        "checkpoint_path": checkpoint_path,
        "recovery": recovery,
        "max_worker_restarts": max_worker_restarts,
    }
    if history == "streaming":
        policy["history"] = "streaming"
    scenario.policy(**policy)
    return scenario.build()


def _crash(round_number: int, segment: int, phase: str = "select") -> FaultPlan:
    return FaultPlan(events=(
        FaultEvent(kind="crash", round=round_number, segment=segment,
                   phase=phase),
    ))


# ---------------------------------------------------------------------------
# The matrix: algorithm x adversary x history x recovery mode
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("adversary", ADVERSARIES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_recovered_runs_are_bit_identical(algorithm, adversary, tmp_path):
    """One mid-run worker crash, recovered, == the fault-free twin — same
    result fields and byte-identical final stitched checkpoint."""
    for history in HISTORIES:
        for mode in MODES:
            path = str(tmp_path / f"{algorithm}-{adversary}-{history}-{mode}.ckpt")
            spec = _build_spec(algorithm, adversary, history,
                               recovery=mode, checkpoint_path=path)
            baseline, _ = run_sharded(spec, transport="local")
            baseline_bytes = (tmp_path / f"{algorithm}-{adversary}-{history}-{mode}.ckpt").read_bytes()
            recovered, extras = run_sharded(
                spec, transport="local", faults=_crash(11, 1)
            )
            label = f"{algorithm}/{adversary}/{history}/{mode}"
            assert extras["recovery"]["restarts"] == 1, label
            assert recovered == baseline, f"{label} result diverged"
            chaos_bytes = (tmp_path / f"{algorithm}-{adversary}-{history}-{mode}.ckpt").read_bytes()
            assert chaos_bytes == baseline_bytes, f"{label} checkpoint diverged"


def test_fold_recovery_runs_the_tail_on_fewer_segments(tmp_path):
    """fold shrinks the segment plan by one and still matches."""
    path = str(tmp_path / "fold.ckpt")
    spec = _build_spec("ppts", "bursty", "summary", recovery="fold",
                       checkpoint_path=path)
    baseline, base_extras = run_sharded(spec, transport="local")
    recovered, extras = run_sharded(spec, transport="local",
                                    faults=_crash(9, 2, "finish"))
    assert recovered == baseline
    assert len(base_extras["segments"]) == SHARDS
    assert len(extras["segments"]) == SHARDS - 1


# ---------------------------------------------------------------------------
# Crash-at-every-round sweep (round 0, final round and drain included)
# ---------------------------------------------------------------------------


def _small_spec(recovery: str, checkpoint_path: str,
                max_worker_restarts: int = 4) -> ScenarioSpec:
    return (
        Scenario.line(12)
        .algorithm("ppts")
        .adversary("round-robin", rho=0.9, sigma=3.0, rounds=10,
                   num_destinations=3)
        .policy(seed=3, shards=3, checkpoint_every=4,
                checkpoint_path=checkpoint_path, recovery=recovery,
                max_worker_restarts=max_worker_restarts)
        .build()
    )


@pytest.mark.parametrize("mode", MODES)
def test_crash_at_every_round_recovers(mode, tmp_path):
    """Sweep the crash coordinate over every round (0, mid, the final
    injection round and the drain tail) and every superstep phase."""
    path = str(tmp_path / "sweep.ckpt")
    spec = _small_spec(mode, path)
    baseline, _ = run_sharded(spec, transport="local")
    baseline_bytes = (tmp_path / "sweep.ckpt").read_bytes()
    drain_tail = 4  # rounds past the horizon still served by workers
    for round_number in range(10 + drain_tail):
        for phase in ("begin", "select", "finish"):
            recovered, extras = run_sharded(
                spec, transport="local",
                faults=_crash(round_number, round_number % SHARDS, phase),
            )
            label = f"round {round_number}/{phase}"
            assert recovered == baseline, f"{label} diverged"
            assert (tmp_path / "sweep.ckpt").read_bytes() == baseline_bytes, (
                f"{label} checkpoint diverged"
            )
            if round_number < 10:
                assert extras["recovery"]["restarts"] == 1, label


def test_crash_during_checkpoint_phase_falls_back_to_previous_cut(tmp_path):
    """A worker dying mid-snapshot tears the staged cut, never the committed
    one: recovery rewinds to the previous consistent checkpoint."""
    path = str(tmp_path / "midckpt.ckpt")
    spec = _small_spec("restart", path)
    baseline, _ = run_sharded(spec, transport="local")
    # checkpoint_every=4 -> checkpoint commands run after rounds 3 and 7.
    recovered, extras = run_sharded(
        spec, transport="local", faults=_crash(7, 1, "checkpoint")
    )
    assert recovered == baseline
    assert extras["recovery"]["restarts"] == 1


def test_crash_without_checkpointing_replays_from_round_zero(tmp_path):
    """No checkpoint_every configured: the only consistent cut is round 0,
    and a full deterministic replay still matches."""
    spec = (
        Scenario.line(12)
        .algorithm("greedy")
        .adversary("round-robin", rho=0.8, sigma=2.0, rounds=12,
                   num_destinations=3)
        .policy(seed=5, shards=3, recovery="restart", max_worker_restarts=2)
        .build()
    )
    baseline, _ = run_sharded(spec, transport="local")
    recovered, extras = run_sharded(spec, transport="local",
                                    faults=_crash(8, 1))
    assert recovered == baseline
    assert extras["recovery"]["restarts"] == 1


# ---------------------------------------------------------------------------
# Replayability and escalation
# ---------------------------------------------------------------------------


def test_sampled_chaos_runs_replay_identically(tmp_path):
    """A seeded FaultPlan is pure data: running the same plan twice gives
    the same recovery story and the same bytes."""
    path = str(tmp_path / "replay.ckpt")
    spec = _small_spec("restart", path)
    plan = FaultPlan.sample(31, rounds=10, shards=SHARDS, events=2,
                            kinds=("crash", "drop"))
    assert plan == FaultPlan.sample(31, rounds=10, shards=SHARDS, events=2,
                                    kinds=("crash", "drop"))
    first, first_extras = run_sharded(spec, transport="local", faults=plan)
    first_bytes = (tmp_path / "replay.ckpt").read_bytes()
    second, second_extras = run_sharded(spec, transport="local", faults=plan)
    assert first == second
    assert first_extras["recovery"] == second_extras["recovery"]
    assert (tmp_path / "replay.ckpt").read_bytes() == first_bytes
    baseline, _ = run_sharded(spec, transport="local")
    assert first == baseline


def test_recovery_budget_exhaustion_raises_typed_error(tmp_path):
    """More crashes than max_worker_restarts escalates, with context."""
    path = str(tmp_path / "exhaust.ckpt")
    spec = _small_spec("restart", path, max_worker_restarts=1)
    plan = FaultPlan(events=(
        FaultEvent(kind="crash", round=2, segment=0),
        FaultEvent(kind="crash", round=5, segment=1),
    ))
    with pytest.raises(RecoveryExhaustedError, match="max_worker_restarts=1"):
        run_sharded(spec, transport="local", faults=plan)


def test_recovery_fail_mode_propagates_worker_failure(tmp_path):
    """recovery='fail' (the default) keeps the old contract: the failure
    surfaces as a typed WorkerFailedError carrying its coordinate."""
    path = str(tmp_path / "failmode.ckpt")
    spec = _small_spec("fail", path)
    with pytest.raises(WorkerFailedError) as excinfo:
        run_sharded(spec, transport="local", faults=_crash(4, 2))
    assert excinfo.value.segment == 2
    assert excinfo.value.round_number == 4


def test_fold_with_single_segment_exhausts_immediately(tmp_path):
    """fold needs a surviving neighbour; a one-segment plan cannot shrink."""
    spec = (
        Scenario.line(8)
        .algorithm("ppts")
        .adversary("round-robin", rho=0.8, sigma=2.0, rounds=8,
                   num_destinations=2)
        .policy(seed=2, shards=2, recovery="fold", max_worker_restarts=5)
        .build()
    )
    baseline, _ = run_sharded(spec, transport="local")
    # First crash folds 2 -> 1; the second cannot fold further.
    plan = FaultPlan(events=(
        FaultEvent(kind="crash", round=2, segment=0),
        FaultEvent(kind="crash", round=5, segment=0),
    ))
    with pytest.raises(RecoveryExhaustedError, match="single segment"):
        run_sharded(spec, transport="local", faults=plan)
    # A single fold alone still matches the fault-free run.
    recovered, extras = run_sharded(
        spec, transport="local",
        faults=FaultPlan(events=(FaultEvent(kind="crash", round=2, segment=0),)),
    )
    assert recovered == baseline
    assert len(extras["segments"]) == 1
