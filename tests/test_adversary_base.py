"""Unit tests for injection patterns (repro.adversary.base)."""

from __future__ import annotations

from repro.adversary.base import InjectionPattern
from repro.core.packet import Injection, make_injection
from repro.network.topology import LineTopology


class TestInjectionPattern:
    def test_round_grouping(self):
        pattern = InjectionPattern.from_tuples(
            [(0, 0, 3), (0, 1, 3), (2, 0, 2)]
        )
        assert len(pattern.injections_for_round(0)) == 2
        assert len(pattern.injections_for_round(1)) == 0
        assert len(pattern.injections_for_round(2)) == 1
        assert pattern.horizon == 3
        assert len(pattern) == 3
        assert pattern.total_packets == 3

    def test_empty_pattern(self):
        pattern = InjectionPattern([])
        assert pattern.horizon == 0
        assert pattern.all_injections() == []

    def test_assigns_fresh_ids_when_missing(self):
        pattern = InjectionPattern([Injection(0, 0, 1), Injection(0, 0, 2)])
        ids = [p.packet_id for p in pattern.all_injections()]
        assert len(set(ids)) == 2
        assert all(pid >= 0 for pid in ids)

    def test_preserves_existing_ids(self):
        injection = make_injection(1, 0, 3)
        pattern = InjectionPattern([injection])
        assert pattern.all_injections()[0].packet_id == injection.packet_id

    def test_destinations_and_sources(self):
        pattern = InjectionPattern.from_tuples(
            [(0, 0, 5), (0, 2, 3), (1, 2, 5), (1, 1, 3)]
        )
        assert pattern.destinations() == [3, 5]
        assert pattern.sources() == [0, 1, 2]
        assert pattern.num_destinations == 2

    def test_crossings_per_round(self):
        line = LineTopology(6)
        pattern = InjectionPattern.from_tuples([(0, 1, 4), (1, 0, 2)])
        crossings = pattern.crossings_per_round(line)
        assert crossings[0] == {1: 1, 2: 1, 3: 1}
        assert crossings[1] == {0: 1, 1: 1}

    def test_crossings_truncated_horizon(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 0, 2), (5, 0, 2)])
        crossings = pattern.crossings_per_round(line, num_rounds=2)
        assert len(crossings) == 2

    def test_restricted_to_rounds(self):
        pattern = InjectionPattern.from_tuples([(0, 0, 1), (3, 0, 1), (7, 0, 1)])
        restricted = pattern.restricted_to_rounds(1, 5)
        assert len(restricted) == 1
        assert restricted.all_injections()[0].round == 3

    def test_shifted(self):
        pattern = InjectionPattern.from_tuples([(2, 0, 1)])
        shifted = pattern.shifted(5)
        assert shifted.all_injections()[0].round == 7

    def test_merged_with(self):
        first = InjectionPattern.from_tuples([(0, 0, 1)])
        second = InjectionPattern.from_tuples([(1, 0, 2)])
        merged = first.merged_with(second)
        assert len(merged) == 2
        assert merged.horizon == 2

    def test_iteration_and_membership(self):
        injection = make_injection(0, 0, 2)
        pattern = InjectionPattern([injection])
        assert injection in pattern
        assert list(pattern) == [injection]

    def test_declared_parameters_carried(self):
        pattern = InjectionPattern.from_tuples([(0, 0, 1)], rho=0.5, sigma=2)
        assert pattern.rho == 0.5
        assert pattern.sigma == 2
