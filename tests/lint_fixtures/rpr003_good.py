"""RPR003 clean: covered mutable state + conforming row table."""


class ForwardingAlgorithm:
    def checkpoint_state(self):
        return {}

    def restore_checkpoint_state(self, state, packets):
        pass


class Covered(ForwardingAlgorithm):
    def __init__(self, topology):
        self._seen = {}

    def checkpoint_state(self):
        return {"seen": sorted(self._seen)}

    def restore_checkpoint_state(self, state, packets):
        self._seen = dict.fromkeys(state["seen"])


class Stateless(ForwardingAlgorithm):
    """No mutable instance state: the root hooks are sufficient."""

    def __init__(self, topology):
        self.threshold = 2


class ResumableRows:
    pass


class GoodRows(ResumableRows):
    pass
