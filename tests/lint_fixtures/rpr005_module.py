"""RPR005 fixture: a registration whose discoverability the test controls."""


def register_algorithm(name, aliases=()):
    def deco(obj):
        return obj

    return deco


@register_algorithm("mystery-algo", aliases=("mystery_algo",))
def build_mystery(topology):
    return None
