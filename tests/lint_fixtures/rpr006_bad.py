"""RPR006 true positives: swallowed exceptions and stray print."""


def risky(connection):
    try:
        connection.send("x")
    except Exception:
        pass  # swallowed
    try:
        connection.recv()
    except:  # bare
        return None
    print("done")  # library code writing to stdout
