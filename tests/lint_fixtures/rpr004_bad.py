"""RPR004 true positives: sharding claimed without the hook triad."""


class ForwardingAlgorithm:
    supports_sharding = False

    def boundary_view(self, round_number, lo, hi):
        return {}

    def select_segment_activations(self, round_number, segment_index,
                                   segments, views, carry):
        return [], None

    def fold_sibling_state(self, states):
        pass


class ShardedNoHooks(ForwardingAlgorithm):
    supports_sharding = True  # no hooks of its own


class CarryNoFold(ForwardingAlgorithm):
    supports_sharding = True
    sharding_needs_carry = True

    def boundary_view(self, round_number, lo, hi):
        return {}

    def select_segment_activations(self, round_number, segment_index,
                                   segments, views, carry):
        return [], None
