"""RPR004 clean: the hook triad is defined (directly or via a real base)."""


class ForwardingAlgorithm:
    supports_sharding = False

    def boundary_view(self, round_number, lo, hi):
        return {}

    def select_segment_activations(self, round_number, segment_index,
                                   segments, views, carry):
        return [], None

    def fold_sibling_state(self, states):
        pass


class ShardedDirect(ForwardingAlgorithm):
    supports_sharding = True
    sharding_needs_carry = True

    def boundary_view(self, round_number, lo, hi):
        return {}

    def select_segment_activations(self, round_number, segment_index,
                                   segments, views, carry):
        return [], None

    def fold_sibling_state(self, states):
        pass


class HookedBase(ForwardingAlgorithm):
    def boundary_view(self, round_number, lo, hi):
        return {}

    def select_segment_activations(self, round_number, segment_index,
                                   segments, views, carry):
        return [], None


class ShardedViaBase(HookedBase):
    """Hooks inherited from a non-root base count: the base's override is
    the proof, and this class shares it."""

    supports_sharding = True
