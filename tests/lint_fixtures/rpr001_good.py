"""RPR001 clean: seeded RNG, sorted iteration, order-insensitive folds."""

import random


def seeded(seed):
    return random.Random(seed).random()


class Algo:
    def __init__(self):
        self._targets: set = set()

    def select_activations(self, round_number):
        out = []
        for node in sorted(self._targets):  # explicit order
            out.append(node)
        peak = max(self._targets, default=0)  # order-insensitive fold
        return out, peak
