"""RPR002 true positives: dict-ful classes in a hot-path module."""

from dataclasses import dataclass
from enum import Enum


class HotRecord:  # no __slots__
    def __init__(self, a, b):
        self.a = a
        self.b = b


@dataclass
class HotRow:  # dataclass without slots=True
    a: int
    b: int


class Mode(Enum):  # exempt: Enum members are class-level
    ON = "on"


class HotPathError(Exception):  # exempt: exceptions are cold
    pass
