"""RPR007 fixture: clean or a finding depending on where it is placed."""


class FrozenThing:
    def __post_init__(self):
        object.__setattr__(self, "digest", "abc123")
