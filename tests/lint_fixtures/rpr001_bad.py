"""RPR001 true positives: unseeded randomness + raw set iteration."""

import random


def jitter():
    return random.random()  # unseeded module-level RNG


class Algo:
    def __init__(self):
        self._targets: set = set()

    def select_activations(self, round_number):
        out = []
        for node in self._targets:  # raw set iteration, order leaks
            out.append(node)
        return out
