"""RPR002 clean: slotted classes in a hot-path module."""

from dataclasses import dataclass


class HotRecord:
    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b


@dataclass(slots=True)
class HotRow:
    a: int
    b: int
