"""Suppression pragma fixture: RPR006 violations, all silenced."""


def forgiven(connection):
    try:
        connection.send("x")
    except Exception:  # repro-lint: disable=RPR006
        pass
    # repro-lint: disable=RPR006
    print("own-line pragma governs the next line")
