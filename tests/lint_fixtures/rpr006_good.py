"""RPR006 clean: narrow catches, typed re-raise."""


class ShardingProtocolError(Exception):
    pass


def careful(connection):
    try:
        connection.send("x")
    except OSError as error:
        raise ShardingProtocolError(f"worker gone: {error}") from error
    try:
        return connection.recv()
    except Exception as error:
        # Broad, but re-raised as a typed error: nothing is swallowed.
        raise ShardingProtocolError(str(error)) from error
