"""RPR003 true positives: uncovered mutable state + rogue row table."""


class ForwardingAlgorithm:
    def checkpoint_state(self):
        return {}

    def restore_checkpoint_state(self, state, packets):
        pass


class Leaky(ForwardingAlgorithm):
    """Assigns mutable state, inherits only the root's no-op hooks."""

    def __init__(self, topology):
        self._seen = {}
        self._order = []


class ResumableRows:
    pass


class BrokenRows:
    """Row table that cannot produce a resume cursor."""
