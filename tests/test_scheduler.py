"""Unit tests for the ForwardingAlgorithm base class and error hierarchy."""

from __future__ import annotations

from typing import Hashable, List

import pytest

from repro.core.packet import Packet, make_injection
from repro.core.scheduler import Activation, ForwardingAlgorithm
from repro.network.errors import (
    BoundednessViolationError,
    CapacityViolationError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    TopologyError,
)
from repro.network.topology import LineTopology


class MinimalAlgorithm(ForwardingAlgorithm):
    """Smallest possible concrete algorithm, used to test base-class defaults."""

    name = "Minimal"

    def classify(self, packet: Packet, node: int) -> Hashable:
        return "only"

    def select_activations(self, round_number: int) -> List[Activation]:
        return []


class TestForwardingAlgorithmDefaults:
    def test_buffers_created_per_node(self):
        line = LineTopology(5)
        algorithm = MinimalAlgorithm(line)
        assert sorted(algorithm.buffers) == [0, 1, 2, 3, 4]

    def test_default_injection_stores_at_source(self):
        line = LineTopology(5)
        algorithm = MinimalAlgorithm(line)
        packet = Packet.from_injection(make_injection(0, 2, 4))
        algorithm.on_inject(0, [packet])
        assert algorithm.occupancy(2) == 1
        assert packet.accepted_round == 0

    def test_occupancy_queries(self):
        line = LineTopology(4)
        algorithm = MinimalAlgorithm(line)
        for source in (0, 0, 1):
            algorithm.on_inject(
                0, [Packet.from_injection(make_injection(0, source, 3))]
            )
        assert algorithm.occupancy_vector() == {0: 2, 1: 1, 2: 0, 3: 0}
        assert algorithm.max_occupancy() == 2
        assert algorithm.total_stored() == 3
        assert algorithm.pending_packets() == 3
        assert algorithm.staged_count() == 0

    def test_on_arrival_reclassifies(self):
        line = LineTopology(4)
        algorithm = MinimalAlgorithm(line)
        packet = Packet.from_injection(make_injection(0, 0, 3))
        algorithm.on_arrival(packet, 2, round_number=1)
        assert algorithm.occupancy(2) == 1

    def test_no_bound_by_default(self):
        assert MinimalAlgorithm(LineTopology(4)).theoretical_bound(2) is None

    def test_activation_is_frozen(self):
        activation = Activation(node=3, key="q")
        with pytest.raises(AttributeError):
            activation.node = 4  # type: ignore[misc]


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_type in (
            TopologyError,
            CapacityViolationError,
            BoundednessViolationError,
            SchedulingError,
            ConfigurationError,
        ):
            assert issubclass(error_type, ReproError)

    def test_capacity_violation_message(self):
        error = CapacityViolationError(edge=(3, 4), round_number=7, detail="two queues")
        assert "(3, 4)" in str(error)
        assert "7" in str(error)
        assert "two queues" in str(error)
        assert error.edge == (3, 4)

    def test_boundedness_violation_fields(self):
        error = BoundednessViolationError(
            buffer=2, interval=(0, 9), observed=5.0, allowed=3.0
        )
        assert error.buffer == 2
        assert error.observed == 5.0
        assert "buffer 2" in str(error)
