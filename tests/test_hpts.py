"""Unit tests for the HPTS algorithm (Algorithms 3-5, Theorem 4.1)."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.generators import random_line_adversary
from repro.adversary.stress import hierarchy_stress, round_robin_destination_stress
from repro.core.bounds import hpts_upper_bound
from repro.core.hpts import HierarchicalPeakToSink
from repro.core.ppts import ParallelPeakToSink
from repro.network.errors import ConfigurationError
from repro.network.simulator import Simulator, run_simulation
from repro.network.topology import LineTopology


class TestConfiguration:
    def test_branching_derived(self):
        line = LineTopology(27)
        algorithm = HierarchicalPeakToSink(line, levels=3)
        assert algorithm.branching == 3

    def test_bad_level_schedule_rejected(self):
        line = LineTopology(16)
        with pytest.raises(ConfigurationError):
            HierarchicalPeakToSink(line, levels=4, level_schedule="sideways")

    def test_rate_precondition_checked(self):
        line = LineTopology(16)
        with pytest.raises(ConfigurationError):
            HierarchicalPeakToSink(line, levels=4, rho=0.5)
        HierarchicalPeakToSink(line, levels=4, rho=0.25)  # fine

    def test_non_power_line_rejected(self):
        line = LineTopology(20)
        with pytest.raises(ConfigurationError):
            HierarchicalPeakToSink(line, levels=3)

    def test_theoretical_bound(self):
        line = LineTopology(64)
        algorithm = HierarchicalPeakToSink(line, levels=3)
        assert algorithm.theoretical_bound(2) == pytest.approx(3 * 4 + 3)

    def test_classification_uses_segment_keys(self):
        line = LineTopology(16)
        algorithm = HierarchicalPeakToSink(line, levels=4)
        pattern = InjectionPattern.from_tuples([(0, 2, 13)])
        run_simulation(line, algorithm, pattern, num_rounds=1, drain=False)
        # Not accepted yet (phase batching), so it is staged.
        assert algorithm.staged_count() == 1


class TestPhaseBatching:
    def test_packets_accepted_at_next_phase_start(self):
        line = LineTopology(16)
        algorithm = HierarchicalPeakToSink(line, levels=4)
        pattern = InjectionPattern.from_tuples([(1, 0, 15)])
        simulator = Simulator(line, algorithm, pattern)
        simulator.run(num_rounds=4, drain=False)
        # Injected in round 1 (phase 0, rounds 0-3): still staged through round 3.
        assert algorithm.staged_count() == 1
        simulator._execute_round(4, inject=False)
        assert algorithm.staged_count() == 0
        assert algorithm.total_stored() == 1

    def test_batching_can_be_disabled(self):
        line = LineTopology(16)
        algorithm = HierarchicalPeakToSink(line, levels=4, batch_acceptance=False)
        pattern = InjectionPattern.from_tuples([(1, 0, 15)])
        simulator = Simulator(line, algorithm, pattern)
        simulator.run(num_rounds=2, drain=False)
        assert algorithm.staged_count() == 0
        assert algorithm.total_stored() == 1

    def test_staged_packets_counted_separately_from_occupancy(self):
        line = LineTopology(16)
        algorithm = HierarchicalPeakToSink(line, levels=4)
        pattern = InjectionPattern.from_tuples([(0, 0, 15)] * 3)
        result = run_simulation(line, algorithm, pattern, num_rounds=1, drain=False)
        assert result.max_staged == 3
        assert result.max_occupancy == 0


class TestReductionToPPTS:
    def test_single_level_behaves_like_ppts(self):
        """With ell = 1 HPTS is PPTS (modulo the one-round acceptance delay)."""
        line = LineTopology(16)
        pattern = round_robin_destination_stress(line, 1.0, 2, 120, 5)
        hpts_result = run_simulation(
            line, HierarchicalPeakToSink(line, levels=1, branching=16), pattern
        )
        ppts_result = run_simulation(line, ParallelPeakToSink(line), pattern)
        assert hpts_result.max_occupancy <= ppts_result.max_occupancy + 2
        assert hpts_result.max_occupancy >= 1


class TestFeasibility:
    @pytest.mark.parametrize("levels,branching", [(2, 4), (3, 4), (4, 2), (2, 8)])
    def test_lemma_4_7_no_capacity_violations(self, levels, branching):
        """The activation set never double-books a node (Lemma 4.7)."""
        n = branching**levels
        line = LineTopology(n)
        rho = 1.0 / levels
        pattern = hierarchy_stress(line, rho, 2, 40 * levels, branching, levels)
        # validate_capacity=True raises if two pseudo-buffers at one node fire.
        result = run_simulation(
            line, HierarchicalPeakToSink(line, levels, branching, rho=rho), pattern
        )
        assert result.packets_injected > 0

    def test_pre_bad_activation_does_not_violate_capacity(self):
        line = LineTopology(64)
        pattern = random_line_adversary(
            line, 1.0 / 3, 2, 200, num_destinations=20, seed=23
        )
        result = run_simulation(
            line, HierarchicalPeakToSink(line, 3, rho=1.0 / 3), pattern
        )
        assert result.packets_injected > 0


class TestTheorem41:
    @pytest.mark.parametrize(
        "branching,levels",
        [(4, 2), (2, 4), (4, 3), (3, 3)],
    )
    def test_hierarchy_stress_respects_bound(self, branching, levels):
        n = branching**levels
        line = LineTopology(n)
        rho = 1.0 / levels
        sigma = 2
        pattern = hierarchy_stress(line, rho, sigma, 60 * levels, branching, levels)
        algorithm = HierarchicalPeakToSink(line, levels, branching, rho=rho)
        result = run_simulation(line, algorithm, pattern)
        assert result.max_occupancy <= hpts_upper_bound(n, levels, sigma)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_adversaries_respect_bound(self, seed):
        branching, levels = 4, 3
        n = branching**levels
        line = LineTopology(n)
        rho, sigma = 1.0 / levels, 2
        pattern = random_line_adversary(
            line, rho, sigma, 240, num_destinations=16, seed=seed
        )
        algorithm = HierarchicalPeakToSink(line, levels, branching, rho=rho)
        result = run_simulation(line, algorithm, pattern)
        assert result.max_occupancy <= hpts_upper_bound(n, levels, sigma)

    def test_round_robin_many_destinations_respects_bound(self):
        branching, levels = 4, 3
        n = branching**levels
        line = LineTopology(n)
        rho, sigma = 1.0 / levels, 1
        pattern = round_robin_destination_stress(line, rho, sigma, 400, n - 1)
        algorithm = HierarchicalPeakToSink(line, levels, branching, rho=rho)
        result = run_simulation(line, algorithm, pattern)
        assert result.max_occupancy <= hpts_upper_bound(n, levels, sigma)

    def test_hpts_beats_ppts_bound_when_destinations_are_many(self):
        """The point of the hierarchy: for d ~ n destinations at low rate, the
        HPTS bound ell * n^(1/ell) is far below the PPTS bound 1 + d."""
        branching, levels = 4, 3
        n = branching**levels
        sigma = 1
        assert hpts_upper_bound(n, levels, sigma) < 1 + (n - 1) + sigma

    def test_ascending_schedule_also_available(self):
        branching, levels = 4, 2
        line = LineTopology(branching**levels)
        rho = 0.5
        pattern = hierarchy_stress(line, rho, 1, 80, branching, levels)
        algorithm = HierarchicalPeakToSink(
            line, levels, branching, rho=rho, level_schedule="ascending"
        )
        result = run_simulation(line, algorithm, pattern)
        assert result.packets_injected > 0
