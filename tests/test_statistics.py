"""Unit tests for sweep statistics (repro.analysis.statistics)."""

from __future__ import annotations

import pytest

from repro.analysis.statistics import (
    aggregate_rows,
    group_by,
    linear_fit,
    summarise,
)


class TestSummarise:
    def test_basic_statistics(self):
        summary = summarise([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.median == 3

    def test_empty_series(self):
        summary = summarise([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_p95(self):
        summary = summarise(list(range(1, 101)))
        assert 95 <= summary.p95 <= 96

    def test_as_dict_rounding(self):
        row = summarise([1, 2]).as_dict()
        assert row["mean"] == 1.5
        assert set(row) == {"count", "mean", "std", "min", "max", "median", "p95"}


class TestGrouping:
    ROWS = [
        {"d": 2, "seed": 0, "occ": 3},
        {"d": 2, "seed": 1, "occ": 5},
        {"d": 4, "seed": 0, "occ": 6},
        {"d": 4, "seed": 1, "occ": 8},
    ]

    def test_group_by_single_key(self):
        groups = group_by(self.ROWS, ["d"])
        assert set(groups) == {(2,), (4,)}
        assert len(groups[(2,)]) == 2

    def test_group_by_missing_key(self):
        groups = group_by([{"a": 1}], ["a", "b"])
        assert set(groups) == {(1, None)}

    def test_aggregate_rows(self):
        aggregated = aggregate_rows(self.ROWS, ["d"], "occ")
        assert len(aggregated) == 2
        first = next(row for row in aggregated if row["d"] == 2)
        assert first["occ_mean"] == pytest.approx(4.0)
        assert first["occ_max"] == 5

    def test_aggregate_rows_with_extractor(self):
        aggregated = aggregate_rows(
            self.ROWS, ["d"], "occ", extractor=lambda row: row["occ"] * 2
        )
        first = next(row for row in aggregated if row["d"] == 4)
        assert first["occ_mean"] == pytest.approx(14.0)


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_ppts_occupancy_curve_is_linear_in_d(self):
        """End-to-end: the E2 series measured by simulation has slope ~1."""
        from repro.adversary.stress import round_robin_destination_stress
        from repro.core.ppts import ParallelPeakToSink
        from repro.network.simulator import run_simulation
        from repro.network.topology import LineTopology

        line = LineTopology(64)
        ds = [2, 4, 8, 16]
        occupancies = []
        for d in ds:
            pattern = round_robin_destination_stress(line, 1.0, 1, 200, d)
            result = run_simulation(line, ParallelPeakToSink(line), pattern)
            occupancies.append(result.max_occupancy)
        slope, _ = linear_fit(ds, occupancies)
        assert 0.8 <= slope <= 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])
        with pytest.raises(ValueError):
            linear_fit([1], [1])
