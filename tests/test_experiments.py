"""Unit tests for workloads, the harness, figure data and the registry."""

from __future__ import annotations

import pytest

from repro.adversary.bounded import check_bounded
from repro.core.hpts import HierarchicalPeakToSink
from repro.core.ppts import ParallelPeakToSink
from repro.core.pts import PeakToSink
from repro.core.tree import TreeParallelPeakToSink
from repro.experiments.figures import figure1_data, render_figure1, trajectory_table
from repro.experiments.harness import rows_to_table, run_workload, sweep
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.workloads import (
    hierarchical_workload,
    lower_bound_workload,
    multi_destination_workload,
    single_destination_workload,
    tree_workload,
)
from repro.network.errors import ConfigurationError
from repro.network.topology import caterpillar_tree


class TestWorkloads:
    def test_single_destination_stress_and_random(self):
        for kind in ("stress", "random"):
            workload = single_destination_workload(
                24, rho=1.0, sigma=2, num_rounds=60, kind=kind, seed=1
            )
            assert check_bounded(workload.pattern, workload.topology, 1.0, 2).bounded
            assert workload.params["kind"] == kind

    def test_multi_destination_kinds(self):
        for kind in ("round_robin", "nested", "random"):
            workload = multi_destination_workload(
                32, 6, rho=1.0, sigma=2, num_rounds=60, kind=kind, seed=2
            )
            assert check_bounded(workload.pattern, workload.topology, 1.0, 2).bounded
        with pytest.raises(ConfigurationError):
            multi_destination_workload(32, 6, 1.0, 2, 60, kind="bogus")

    def test_hierarchical_workload(self):
        workload = hierarchical_workload(4, 3, rho=1 / 3, sigma=2, num_rounds=90)
        assert workload.params["n"] == 64
        assert check_bounded(workload.pattern, workload.topology, 1 / 3, 2).bounded

    def test_tree_workload_default_and_custom(self):
        workload = tree_workload(None, rho=1.0, sigma=1, num_rounds=40)
        assert workload.params["d_prime"] >= 1
        tree = caterpillar_tree(5, 1)
        spine = [v for v in tree.nodes if tree.children(v)]
        custom = tree_workload(
            tree, rho=1.0, sigma=1, num_rounds=40, destinations=spine, kind="random",
            seed=3,
        )
        assert custom.params["d_prime"] == len(spine)

    def test_lower_bound_workload(self):
        workload = lower_bound_workload(3, 2, rho=0.5, num_phases=4)
        assert workload.params["n"] == 27
        assert workload.params["theoretical_bound"] >= 0


class TestHarness:
    def test_run_workload_produces_row(self):
        workload = single_destination_workload(16, 1.0, 2, 50)
        row = run_workload(workload, lambda w: PeakToSink(w.topology))
        assert row.algorithm == "PTS"
        assert row.within_bound
        assert row.max_occupancy <= row.bound
        assert row.params["n"] == 16

    def test_keep_result_attaches_simulation_result(self):
        workload = single_destination_workload(16, 1.0, 1, 30)
        row = run_workload(
            workload, lambda w: PeakToSink(w.topology), keep_result=True
        )
        assert row.result is not None
        assert row.result.max_occupancy == row.max_occupancy

    def test_sweep_cartesian_product(self):
        workloads = [
            multi_destination_workload(24, d, 1.0, 1, 40) for d in (2, 4)
        ]
        rows = sweep(
            workloads,
            {
                "ppts": lambda w: ParallelPeakToSink(w.topology),
                "hpts": lambda w: HierarchicalPeakToSink(
                    w.topology, levels=1, branching=w.topology.num_nodes
                ),
            },
        )
        assert len(rows) == 4
        assert all(row.within_bound for row in rows if row.algorithm == "PPTS")

    def test_rows_to_table_renders(self):
        workload = single_destination_workload(16, 1.0, 1, 30)
        row = run_workload(workload, lambda w: PeakToSink(w.topology))
        text = rows_to_table([row], title="E1")
        assert text.splitlines()[0] == "E1"
        assert "PTS" in text

    def test_tree_factory_in_harness(self):
        workload = tree_workload(None, 1.0, 1, 30)
        row = run_workload(
            workload,
            lambda w: TreeParallelPeakToSink(
                w.topology, destinations=w.params["destinations"]
            ),
        )
        assert row.within_bound


class TestFigures:
    def test_figure1_data_matches_paper_parameters(self):
        data = figure1_data(2, 4)
        assert data["num_nodes"] == 16
        assert data["labels"][:3] == ["0000", "0001", "0010"]
        assert len(data["rows"]) == 15

    def test_render_figure1_ascii(self):
        art = render_figure1(2, 4)
        lines = art.splitlines()
        assert len(lines) == 1 + 4  # header + one row per level
        assert "j=3" in art and "j=0" in art

    def test_render_figure1_with_trajectory(self):
        art = render_figure1(2, 4, trajectory=(2, 13))
        assert "*" in art
        assert "2 -> 13" in art

    def test_trajectory_table(self):
        rows = trajectory_table(2, 4, source=2, destination=13)
        assert rows[0]["start"] == 2
        assert rows[-1]["end"] == 13
        levels = [row["level"] for row in rows]
        assert levels == sorted(levels, reverse=True)


class TestRegistry:
    def test_all_nine_experiments_present(self):
        assert len(EXPERIMENTS) == 9
        assert [e.id for e in list_experiments()] == [f"E{i}" for i in range(1, 10)]

    def test_lookup(self):
        experiment = get_experiment("e4")
        assert "HPTS" in experiment.paper_item or "4.1" in experiment.paper_item
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_benchmarks_referenced_exist(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        for experiment in list_experiments():
            assert (root / experiment.benchmark).exists(), experiment.benchmark

    def test_modules_referenced_importable(self):
        import importlib

        for experiment in list_experiments():
            for module in experiment.modules:
                importlib.import_module(module)
