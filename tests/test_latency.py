"""Unit tests for the latency analysis helpers (repro.analysis.latency)."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.generators import single_destination_adversary
from repro.analysis.latency import (
    delivery_rate,
    latency_breakdown,
    latency_by_distance,
    stretch_summary,
)
from repro.baselines.greedy import GreedyForwarding
from repro.core.pts import PeakToSink
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology


def _run(algorithm_factory, pattern, line, **kwargs) -> Simulator:
    simulator = Simulator(line, algorithm_factory(line), pattern)
    simulator.run(**kwargs)
    return simulator


class TestLatencyBreakdown:
    def test_uncontended_packet_has_zero_queueing_delay(self):
        line = LineTopology(10)
        pattern = InjectionPattern.from_tuples([(0, 0, 9)])
        simulator = _run(GreedyForwarding, pattern, line)
        breakdown = latency_breakdown(simulator)
        assert breakdown.delivered == 1
        assert breakdown.undelivered == 0
        assert breakdown.latency.mean == 8          # 9 hops, moves every round
        assert breakdown.queueing_delay.mean == 0
        assert breakdown.stretch.mean == pytest.approx(1.0)

    def test_contention_shows_up_as_queueing_delay(self):
        line = LineTopology(10)
        # Five packets injected at the same node in the same round: they must
        # serialise over the first edge, so queueing delay is positive.
        pattern = InjectionPattern.from_tuples([(0, 0, 9)] * 5)
        simulator = _run(GreedyForwarding, pattern, line)
        breakdown = latency_breakdown(simulator)
        assert breakdown.delivered == 5
        assert breakdown.queueing_delay.maximum >= 4
        assert breakdown.stretch.maximum > 1.0

    def test_undelivered_packets_counted(self):
        line = LineTopology(10)
        pattern = InjectionPattern.from_tuples([(0, 0, 9)])
        # PTS never forwards a lone packet.
        simulator = _run(PeakToSink, pattern, line)
        breakdown = latency_breakdown(simulator)
        assert breakdown.delivered == 0
        assert breakdown.undelivered == 1
        assert breakdown.latency.count == 0

    def test_empty_simulation(self):
        line = LineTopology(4)
        simulator = _run(GreedyForwarding, InjectionPattern([]), line)
        breakdown = latency_breakdown(simulator)
        assert breakdown.delivered == 0
        assert delivery_rate(simulator) == 1.0


class TestLatencyByDistance:
    def test_rows_cover_all_distances(self):
        line = LineTopology(32)
        pattern = single_destination_adversary(line, 1.0, 2, 80, seed=11)
        simulator = _run(GreedyForwarding, pattern, line)
        rows = latency_by_distance(simulator, num_buckets=4)
        assert rows
        assert sum(row["packets"] for row in rows) == latency_breakdown(simulator).delivered

    def test_latency_grows_with_distance_for_work_conserving(self):
        line = LineTopology(32)
        pattern = single_destination_adversary(line, 0.5, 1, 120, seed=3)
        simulator = _run(GreedyForwarding, pattern, line)
        rows = latency_by_distance(simulator, num_buckets=3)
        if len(rows) >= 2:
            assert rows[-1]["mean_latency"] >= rows[0]["mean_latency"]

    def test_empty_when_nothing_delivered(self):
        line = LineTopology(8)
        pattern = InjectionPattern.from_tuples([(0, 0, 7)])
        simulator = _run(PeakToSink, pattern, line)
        assert latency_by_distance(simulator) == []


class TestSummaries:
    def test_stretch_none_when_nothing_delivered(self):
        line = LineTopology(8)
        pattern = InjectionPattern.from_tuples([(0, 0, 7)])
        simulator = _run(PeakToSink, pattern, line)
        assert stretch_summary(simulator) is None

    def test_delivery_rate(self):
        line = LineTopology(8)
        pattern = InjectionPattern.from_tuples([(0, 0, 7), (0, 6, 7)])
        greedy = _run(GreedyForwarding, pattern, line)
        assert delivery_rate(greedy) == 1.0
        pts = _run(PeakToSink, pattern, line)
        assert delivery_rate(pts) < 1.0
