"""Property-based tests for the tree algorithms on random trees and traffic.

Hypothesis generates the tree shape (random recursive trees of varying size),
the destination placement and the adversary parameters; a token bucket keeps
every generated pattern ``(rho, sigma)``-bounded.  Checked properties:

* the Proposition B.3 / 3.5 bounds hold,
* packets are conserved (no loss, no duplication),
* the capacity constraint is never violated (the simulator validates it),
* packets only ever move toward the root (monotone depth).
"""

from __future__ import annotations

import random as random_module

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.base import InjectionPattern
from repro.adversary.bounded import TokenBucket
from repro.core.bounds import pts_upper_bound, tree_ppts_upper_bound
from repro.core.packet import make_injection
from repro.core.tree import TreeParallelPeakToSink, TreePeakToSink
from repro.network.simulator import Simulator
from repro.network.topology import TreeTopology, random_tree


def _bounded_tree_pattern(
    tree: TreeTopology,
    destinations,
    rho: float,
    sigma: int,
    num_rounds: int,
    seed: int,
) -> InjectionPattern:
    rng = random_module.Random(seed)
    node_index = {v: idx for idx, v in enumerate(tree.nodes)}
    bucket = TokenBucket(len(tree.nodes), rho, sigma)
    eligible = {
        w: [u for u in tree.nodes if u != w and tree.is_upstream(u, w)]
        for w in destinations
    }
    usable = [w for w in destinations if eligible[w]]
    injections = []
    for t in range(num_rounds):
        bucket.start_round()
        if not usable:
            continue
        for _ in range(4):
            destination = rng.choice(usable)
            source = rng.choice(eligible[destination])
            crossed = [node_index[v] for v in tree.path(source, destination)[:-1]]
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                injections.append(make_injection(t, source, destination))
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def _depths_monotone_toward_root(simulator: Simulator, tree: TreeTopology) -> bool:
    """Every undelivered packet's current depth is <= its source depth."""
    for packet in simulator.packets.values():
        if packet.delivered:
            continue
        if tree.depth(packet.location) > tree.depth(packet.source):
            return False
    return True


class TestTreePTSProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        num_nodes=st.integers(min_value=3, max_value=40),
        sigma=st.integers(min_value=0, max_value=4),
        num_rounds=st.integers(min_value=5, max_value=50),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_bound_conservation_and_direction(self, num_nodes, sigma, num_rounds, seed):
        tree = random_tree(num_nodes, seed=seed)
        pattern = _bounded_tree_pattern(
            tree, [tree.root], 1.0, sigma, num_rounds, seed
        )
        algorithm = TreePeakToSink(tree)
        simulator = Simulator(tree, algorithm, pattern)
        result = simulator.run()
        assert result.max_occupancy <= pts_upper_bound(sigma)
        stored = algorithm.total_stored()
        assert result.packets_injected == result.packets_delivered + stored
        assert _depths_monotone_toward_root(simulator, tree)


class TestTreePPTSProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        num_nodes=st.integers(min_value=4, max_value=40),
        sigma=st.integers(min_value=0, max_value=3),
        num_destinations=st.integers(min_value=1, max_value=5),
        num_rounds=st.integers(min_value=5, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_bound_and_conservation(
        self, num_nodes, sigma, num_destinations, num_rounds, seed
    ):
        tree = random_tree(num_nodes, seed=seed)
        rng = random_module.Random(seed + 1)
        internal = [v for v in tree.nodes if tree.children(v)] or [tree.root]
        destinations = sorted(
            set(rng.sample(internal, min(num_destinations, len(internal))))
        )
        pattern = _bounded_tree_pattern(tree, destinations, 1.0, sigma, num_rounds, seed)
        algorithm = TreeParallelPeakToSink(tree, destinations=destinations)
        simulator = Simulator(tree, algorithm, pattern)
        result = simulator.run()  # capacity validated every round
        d_prime = tree.destination_depth(destinations)
        assert result.max_occupancy <= tree_ppts_upper_bound(max(d_prime, 1), sigma)
        stored = algorithm.total_stored()
        assert result.packets_injected == result.packets_delivered + stored
        assert _depths_monotone_toward_root(simulator, tree)
