"""Streaming (memory-lean) runs: equivalence, retention, lazy adversaries.

The acceptance bar for the memory-lean engine is that ``history="streaming"``
— folded statistics, packets released at delivery, lazily generated
injections — produces the *same* ``SimulationResult`` summary statistics as
the full-history path on seeded scenarios, while retaining only
O(packets-in-flight) state.
"""

from __future__ import annotations

import pytest

from repro.adversary.base import StreamingAdversary
from repro.adversary.bounded import check_bounded
from repro.adversary.generators import trickle_adversary
from repro.api.session import Session
from repro.api.specs import RunPolicy, ScenarioSpec, SpecError
from repro.core.excess import ExcessTracker
from repro.core.hierarchy import HierarchicalPartition, Segment
from repro.core.packet import Packet, PacketStore, make_injection, packet_id_scope
from repro.core.pseudobuffer import NodeBuffer, PseudoBuffer
from repro.core.pts import PeakToSink
from repro.core.scheduler import Activation
from repro.network.errors import ConfigurationError
from repro.network.events import HistoryPolicy, SimulationResult
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology


def _spec(payload):
    return ScenarioSpec.from_dict(payload)


SEEDED_SCENARIOS = [
    _spec(
        {
            "name": "stream/pts",
            "topology": {"kind": "line", "params": {"num_nodes": 48}},
            "algorithm": {"name": "pts", "params": {}},
            "adversary": {"name": "single", "rho": 1.0, "sigma": 3.0,
                          "rounds": 200, "params": {}},
            "policy": {"seed": 11},
        }
    ),
    _spec(
        {
            "name": "stream/ppts",
            "topology": {"kind": "line", "params": {"num_nodes": 48}},
            "algorithm": {"name": "ppts", "params": {}},
            "adversary": {"name": "bounded", "rho": 0.9, "sigma": 3.0,
                          "rounds": 200, "params": {"num_destinations": 5}},
            "policy": {"seed": 11},
        }
    ),
    _spec(
        {
            "name": "stream/hpts",
            "topology": {"kind": "line", "params": {"num_nodes": 64}},
            "algorithm": {"name": "hpts", "params": {"levels": 2}},
            "adversary": {"name": "bounded", "rho": 0.5, "sigma": 3.0,
                          "rounds": 200, "params": {"num_destinations": 5}},
            "policy": {"seed": 11},
        }
    ),
    _spec(
        {
            "name": "stream/trickle-pts",
            "topology": {"kind": "line", "params": {"num_nodes": 96}},
            "algorithm": {"name": "pts", "params": {}},
            "adversary": {"name": "trickle", "rho": 1.0, "sigma": 1.0,
                          "rounds": 300, "params": {}},
            "policy": {"seed": 11},
        }
    ),
]


def _fingerprint(result):
    return (
        result.max_occupancy,
        result.max_occupancy_per_node,
        result.max_staged,
        result.rounds_executed,
        result.packets_injected,
        result.packets_delivered,
        result.packets_undelivered,
        result.max_latency,
        result.mean_latency,
        result.drained,
    )


def _with_policy(spec, **overrides):
    policy = {**spec.policy.to_dict(), **overrides}
    return _spec({**spec.to_dict(), "policy": policy})


def _with_stream_adversary(spec):
    adversary = spec.adversary.to_dict()
    adversary["params"] = {**adversary["params"], "stream": True}
    return _spec({**spec.to_dict(), "adversary": adversary})


class TestStreamingEquivalence:
    @pytest.mark.parametrize("spec", SEEDED_SCENARIOS, ids=lambda s: s.label)
    def test_streaming_matches_full_history_summary_stats(self, spec):
        session = Session()
        streaming = session.run(
            _with_stream_adversary(_with_policy(spec, history="streaming"))
        )
        full = session.run(_with_policy(spec, record_history=True))
        assert _fingerprint(streaming.result) == _fingerprint(full.result)
        assert streaming.within_bound == full.within_bound
        # Only the full run retains per-round records.
        assert streaming.result.history == []
        assert len(full.result.history) == full.result.rounds_executed

    @pytest.mark.parametrize("spec", SEEDED_SCENARIOS, ids=lambda s: s.label)
    def test_lazy_adversary_matches_eager_adversary(self, spec):
        session = Session()
        eager = session.run(spec)
        lazy = session.run(_with_stream_adversary(spec))
        assert _fingerprint(eager.result) == _fingerprint(lazy.result)

    def test_history_policies_agree_pairwise(self):
        spec = SEEDED_SCENARIOS[1]
        session = Session()
        results = {
            policy: session.run(_with_policy(spec, history=policy)).result
            for policy in ("summary", "streaming", "full")
        }
        assert (
            _fingerprint(results["summary"])
            == _fingerprint(results["streaming"])
            == _fingerprint(results["full"])
        )


class TestStreamingRetention:
    def test_streaming_run_releases_delivered_packets(self):
        spec = _with_stream_adversary(
            _with_policy(SEEDED_SCENARIOS[0], history="streaming")
        )
        session = Session()
        with packet_id_scope():
            prepared = session.prepare(spec)
            simulator = Simulator(
                prepared.topology, prepared.algorithm, prepared.adversary,
                history="streaming",
            )
            result = simulator.run()
        assert simulator.history_policy is HistoryPolicy.STREAMING
        assert not simulator.retain_packets
        # Only undelivered packets remain reachable; the columnar store has
        # the full injection log.
        assert len(simulator.packets) == result.packets_undelivered
        assert simulator.packet_store is not None
        assert len(simulator.packet_store) == result.packets_injected

    def test_summary_run_retains_every_packet(self):
        spec = SEEDED_SCENARIOS[0]
        session = Session()
        with packet_id_scope():
            prepared = session.prepare(spec)
            simulator = Simulator(
                prepared.topology, prepared.algorithm, prepared.adversary
            )
            result = simulator.run()
        assert simulator.history_policy is HistoryPolicy.SUMMARY
        assert len(simulator.packets) == result.packets_injected
        assert simulator.packet_store is None

    def test_record_history_flags_conflict_with_streaming(self):
        line = LineTopology(8)
        algorithm = PeakToSink(line)
        adversary = trickle_adversary(line, 1.0, 1.0, 10, seed=0)
        with pytest.raises(ConfigurationError):
            Simulator(
                line, algorithm, adversary,
                record_history=True, history="streaming",
            )

    def test_unknown_history_policy_rejected(self):
        line = LineTopology(8)
        with pytest.raises(ValueError):
            Simulator(
                line, PeakToSink(line),
                trickle_adversary(line, 1.0, 1.0, 10, seed=0),
                history="everything",
            )


class TestStreamingAdversaryContract:
    def _stream(self, horizon=20):
        line = LineTopology(32)
        return trickle_adversary(line, 1.0, 1.0, horizon, seed=4, stream=True)

    def test_backward_access_raises(self):
        adversary = self._stream()
        adversary.injections_for_round(3)
        with pytest.raises(RuntimeError):
            adversary.injections_for_round(2)

    def test_skipped_rounds_keep_packet_ids_aligned(self):
        with packet_id_scope():
            reference = trickle_adversary(
                LineTopology(32), 1.0, 1.0, 20, seed=4
            ).injections_for_round(7)
        with packet_id_scope():
            skipping = self._stream()
            jumped = skipping.injections_for_round(7)  # rounds 0-6 skipped
        assert jumped == reference

    def test_past_horizon_is_empty(self):
        adversary = self._stream(horizon=5)
        assert adversary.injections_for_round(17) == []

    def test_all_injections_refuses_to_materialise(self):
        with pytest.raises(RuntimeError):
            self._stream().all_injections()

    def test_materialize_fresh_stream_equals_eager(self):
        with packet_id_scope():
            eager = trickle_adversary(LineTopology(32), 1.0, 1.0, 20, seed=4)
        with packet_id_scope():
            materialized = self._stream().materialize()
        assert eager.all_injections() == materialized.all_injections()

    def test_materialize_after_consumption_raises(self):
        adversary = self._stream()
        adversary.injections_for_round(0)
        with pytest.raises(RuntimeError):
            adversary.materialize()


class TestTrickleAdversary:
    def test_trickle_is_rho_one_bounded_by_construction(self):
        line = LineTopology(40)
        pattern = trickle_adversary(line, 0.7, 0.0, 200, seed=9)
        assert pattern.sigma == 1.0  # declared envelope is clamped up to 1
        report = check_bounded(pattern, line, 0.7, 1.0)
        assert report.bounded
        # Rate check: at most rho * T + 1 packets in total.
        assert len(pattern) <= 0.7 * 200 + 1

    def test_trickle_validates_destinations(self):
        line = LineTopology(16)
        with pytest.raises(ConfigurationError):
            trickle_adversary(line, 1.0, 1.0, 10, destination=0)
        with pytest.raises(ConfigurationError):
            trickle_adversary(line, 1.0, 1.0, 10, destinations=[])
        with pytest.raises(ConfigurationError):
            trickle_adversary(line, 1.0, 1.0, 10, destination=3, destinations=[4])


class TestRunPolicyHistoryField:
    def test_round_trip_preserves_history(self):
        policy = RunPolicy(history="streaming")
        assert RunPolicy.from_dict(policy.to_dict()) == policy

    def test_invalid_history_rejected(self):
        with pytest.raises(SpecError):
            RunPolicy(history="forever")

    def test_history_conflicts_with_record_flags(self):
        with pytest.raises(SpecError):
            RunPolicy(history="streaming", record_history=True)
        with pytest.raises(SpecError):
            RunPolicy(history="summary", record_occupancy_vectors=True)
        # "full" is the explicit spelling of the record flags: compatible.
        RunPolicy(history="full", record_history=True)


class TestSlottedHotClasses:
    """The hot-path objects must stay dict-free (the memory-lean invariant)."""

    @pytest.mark.parametrize(
        "instance",
        [
            Packet.from_injection(make_injection(0, 0, 3)),
            PseudoBuffer("w"),
            NodeBuffer(0),
            Activation(node=0, key=1),
            PacketStore(),
            # Slotted by the RPR002 sweep (see docs/LINTING.md).
            ExcessTracker(4, 0.5),
            Segment(start=0, end=3, level=1),
            HierarchicalPartition(8, 3, 2),
            packet_id_scope(),
            SimulationResult(algorithm="pts", num_nodes=4, rounds_executed=0,
                             max_occupancy=0),
        ],
        ids=lambda obj: type(obj).__name__,
    )
    def test_no_instance_dict(self, instance):
        assert not hasattr(instance, "__dict__")

    def test_packet_store_round_trips_records(self):
        store = PacketStore()
        with packet_id_scope():
            injections = [make_injection(t, t % 3, 5 + t % 2) for t in range(10)]
        for injection in injections:
            store.append_injection(injection)
        assert len(store) == 10
        assert list(store) == injections
        assert store.injection(4) == injections[4]
        assert store.nbytes >= 10 * 4 * 8

    def test_packet_materialises_injection_view(self):
        with packet_id_scope():
            injection = make_injection(2, 1, 7)
        packet = Packet.from_injection(injection)
        assert packet.injection == injection
        packet.advance(2)
        assert packet.injection == injection  # the view tracks injection data
