"""Unit tests for pattern/result serialization (repro.adversary.io)."""

from __future__ import annotations

import json

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.generators import random_line_adversary
from repro.adversary.io import (
    load_pattern,
    pattern_from_dict,
    pattern_to_dict,
    result_to_dict,
    save_pattern,
    save_result,
)
from repro.core.ppts import ParallelPeakToSink
from repro.network.errors import ConfigurationError
from repro.network.simulator import run_simulation
from repro.network.topology import LineTopology


class TestPatternRoundtrip:
    def test_dict_roundtrip_preserves_everything(self):
        pattern = InjectionPattern.from_tuples(
            [(0, 0, 5), (0, 2, 7), (3, 1, 4)], rho=0.5, sigma=2
        )
        rebuilt = pattern_from_dict(pattern_to_dict(pattern))
        assert rebuilt.rho == 0.5
        assert rebuilt.sigma == 2
        assert [
            (p.round, p.source, p.destination, p.packet_id)
            for p in rebuilt.all_injections()
        ] == [
            (p.round, p.source, p.destination, p.packet_id)
            for p in pattern.all_injections()
        ]

    def test_file_roundtrip(self, tmp_path):
        line = LineTopology(16)
        pattern = random_line_adversary(line, 0.8, 2, 40, 3, seed=9)
        path = save_pattern(pattern, tmp_path / "trace.json")
        assert path.exists()
        rebuilt = load_pattern(path)
        assert len(rebuilt) == len(pattern)
        assert rebuilt.destinations() == pattern.destinations()

    def test_reloaded_pattern_reproduces_simulation(self, tmp_path):
        line = LineTopology(16)
        pattern = random_line_adversary(line, 1.0, 2, 60, 4, seed=4)
        original = run_simulation(line, ParallelPeakToSink(line), pattern)
        reloaded = load_pattern(save_pattern(pattern, tmp_path / "trace.json"))
        replayed = run_simulation(line, ParallelPeakToSink(line), reloaded)
        assert replayed.max_occupancy == original.max_occupancy
        assert replayed.packets_injected == original.packets_injected

    def test_empty_pattern(self, tmp_path):
        path = save_pattern(InjectionPattern([]), tmp_path / "empty.json")
        assert len(load_pattern(path)) == 0

    def test_missing_rho_sigma_roundtrip_to_none(self):
        pattern = InjectionPattern.from_tuples([(0, 0, 1)])
        rebuilt = pattern_from_dict(pattern_to_dict(pattern))
        assert rebuilt.rho is None
        assert rebuilt.sigma is None


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError):
            pattern_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        data = pattern_to_dict(InjectionPattern([]))
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            pattern_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_pattern(path)


class TestResultSerialization:
    def test_result_dict_fields(self, tmp_path):
        line = LineTopology(12)
        pattern = random_line_adversary(line, 1.0, 1, 30, 2, seed=1)
        result = run_simulation(line, ParallelPeakToSink(line), pattern)
        data = result_to_dict(result)
        assert data["algorithm"] == "PPTS"
        assert data["max_occupancy"] == result.max_occupancy
        assert data["packets_injected"] == result.packets_injected

        path = save_result(result, tmp_path / "result.json", extra={"experiment": "E2"})
        loaded = json.loads(path.read_text())
        assert loaded["extra"]["experiment"] == "E2"
        assert loaded["format"] == "repro.simulation_result"
