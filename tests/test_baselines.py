"""Unit tests for the greedy baseline algorithms."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.stress import round_robin_destination_stress
from repro.baselines.greedy import GreedyForwarding
from repro.baselines.policies import (
    ALL_POLICIES,
    fifo,
    furthest_to_go,
    lifo,
    longest_in_system,
    nearest_to_go,
    policy_by_name,
    shortest_in_system,
)
from repro.core.packet import Packet, make_injection
from repro.network.simulator import Simulator, run_simulation
from repro.network.topology import LineTopology, caterpillar_tree


class TestPolicies:
    def test_registry_contains_six_policies(self):
        assert len(ALL_POLICIES) == 6
        assert {p.name for p in ALL_POLICIES} == {
            "FIFO", "LIFO", "LIS", "SIS", "NTG", "FTG",
        }

    def test_lookup_by_name_case_insensitive(self):
        assert policy_by_name("lis") is longest_in_system
        assert policy_by_name("FIFO") is fifo
        with pytest.raises(KeyError):
            policy_by_name("nope")

    def test_lis_prefers_older_packets(self):
        old = Packet.from_injection(make_injection(0, 0, 5))
        new = Packet.from_injection(make_injection(3, 0, 5))
        assert longest_in_system(old, 0) < longest_in_system(new, 0)
        assert shortest_in_system(new, 0) < shortest_in_system(old, 0)

    def test_ntg_prefers_shorter_remaining_distance(self):
        near = Packet.from_injection(make_injection(0, 4, 5))
        far = Packet.from_injection(make_injection(0, 0, 9))
        assert nearest_to_go(near, 0) < nearest_to_go(far, 0)
        assert furthest_to_go(far, 0) < furthest_to_go(near, 0)

    def test_fifo_uses_arrival_round(self):
        packet = Packet.from_injection(make_injection(0, 0, 5))
        assert fifo(packet, 1) < fifo(packet, 2)
        assert lifo(packet, 2) < lifo(packet, 1)


class TestGreedyForwarding:
    def test_work_conservation(self):
        """Every non-empty buffer forwards every round."""
        line = LineTopology(8)
        algorithm = GreedyForwarding(line)
        pattern = InjectionPattern.from_tuples(
            [(0, 0, 7), (0, 2, 7), (0, 5, 7)]
        )
        simulator = Simulator(line, algorithm, pattern, record_history=True)
        result = simulator.run(num_rounds=1, drain=False)
        assert result.history[0].forwarded == 3

    def test_everything_drains(self):
        line = LineTopology(16)
        pattern = round_robin_destination_stress(line, 1.0, 2, 100, 4)
        for policy in ALL_POLICIES:
            result = run_simulation(line, GreedyForwarding(line, policy), pattern)
            assert result.drained, policy.name
            assert result.packets_delivered == result.packets_injected

    def test_name_includes_policy(self):
        line = LineTopology(4)
        assert GreedyForwarding(line, nearest_to_go).name == "Greedy-NTG"

    def test_policy_changes_delivery_order(self):
        line = LineTopology(8)
        # Two packets at node 0: one injected earlier with a longer route.
        pattern = InjectionPattern.from_tuples([(0, 0, 7), (1, 0, 2)])
        lis_sim = Simulator(line, GreedyForwarding(line, longest_in_system), pattern)
        lis_result = lis_sim.run()
        ntg_sim = Simulator(line, GreedyForwarding(line, nearest_to_go), pattern)
        ntg_result = ntg_sim.run()
        lis_latencies = {
            p.destination: p.latency for p in lis_sim.packets.values()
        }
        ntg_latencies = {
            p.destination: p.latency for p in ntg_sim.packets.values()
        }
        # NTG serves the short packet first, LIS serves the old packet first.
        assert ntg_latencies[2] <= lis_latencies[2]
        assert lis_result.packets_delivered == ntg_result.packets_delivered == 2

    def test_runs_on_trees(self):
        tree = caterpillar_tree(4, 2)
        pattern = InjectionPattern.from_tuples(
            [(0, leaf, tree.root) for leaf in tree.leaves()]
        )
        result = run_simulation(tree, GreedyForwarding(tree), pattern)
        assert result.drained

    def test_no_theoretical_bound(self):
        line = LineTopology(4)
        assert GreedyForwarding(line).theoretical_bound(2) is None

    def test_greedy_not_better_than_ppts_bound_guarantee(self):
        """Greedy may exceed the PPTS bound on multi-destination stress; PPTS
        never does.  (Greedy is not *guaranteed* to exceed it, so this test
        checks only the PPTS side plus that both simulate cleanly.)"""
        from repro.core.ppts import ParallelPeakToSink
        from repro.core.bounds import ppts_upper_bound

        line = LineTopology(32)
        d, sigma = 8, 2
        pattern = round_robin_destination_stress(line, 1.0, sigma, 200, d)
        ppts = run_simulation(line, ParallelPeakToSink(line), pattern)
        greedy = run_simulation(line, GreedyForwarding(line, fifo), pattern)
        assert ppts.max_occupancy <= ppts_upper_bound(d, sigma)
        assert greedy.max_occupancy >= 1
