"""Edge-case tests for repro.core.indexset and its GC interaction.

Covers the satellite checklist of the memory-lean engine PR: remove-absent /
duplicate-add idempotence, left-most-bad queries after interleaved
garbage-collection, and ``NodeBuffer.drop_empty`` running against the
incremental selection indices.
"""

from __future__ import annotations

import random

import pytest

from repro.core.indexset import BufferIndex, SortedIndexSet
from repro.core.packet import Packet, make_injection, packet_id_scope
from repro.core.ppts import ParallelPeakToSink
from repro.core.pseudobuffer import NodeBuffer
from repro.adversary.generators import random_line_adversary
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology


class TestSortedIndexSet:
    def test_remove_absent_is_a_noop(self):
        index_set = SortedIndexSet()
        index_set.discard(5)
        assert len(index_set) == 0
        index_set.add(3)
        index_set.discard(5)
        assert list(index_set) == [3]

    def test_duplicate_add_is_idempotent(self):
        index_set = SortedIndexSet()
        index_set.add(7)
        index_set.add(7)
        index_set.add(7)
        assert len(index_set) == 1
        index_set.discard(7)
        assert len(index_set) == 0
        assert 7 not in index_set

    def test_interleaved_adds_and_discards_keep_sorted_order(self):
        index_set = SortedIndexSet()
        rng = random.Random(3)
        reference = set()
        for _ in range(500):
            value = rng.randrange(40)
            if rng.random() < 0.5:
                index_set.add(value)
                reference.add(value)
            else:
                index_set.discard(value)
                reference.discard(value)
        assert list(index_set) == sorted(reference)

    def test_first_and_range_queries_on_empty_set(self):
        index_set = SortedIndexSet()
        assert index_set.first() is None
        assert index_set.first_in(0, 100) is None
        assert list(index_set.range_iter(0, 100)) == []

    def test_first_in_respects_both_bounds(self):
        index_set = SortedIndexSet()
        for value in (2, 5, 9):
            index_set.add(value)
        assert index_set.first_in(0, 1) is None
        assert index_set.first_in(3, 4) is None
        assert index_set.first_in(3, 5) == 5
        assert index_set.first_in(9, 9) == 9
        assert index_set.first_in(10, 20) is None


class TestBufferIndex:
    def test_update_for_never_seen_key_going_empty_is_a_noop(self):
        index = BufferIndex()
        # A pseudo-buffer that was already empty "changes" 0 -> 0 (e.g. a
        # no-op remove path): neither table may materialise an entry.
        index.update(node=4, key="w", old_len=0, new_len=0)
        assert not index.nonempty("w")
        assert not index.bad("w")

    def test_threshold_crossings_in_both_directions(self):
        index = BufferIndex()
        index.update(0, "w", 0, 1)
        assert list(index.nonempty("w")) == [0]
        assert not index.bad("w")
        index.update(0, "w", 1, 2)
        assert list(index.bad("w")) == [0]
        index.update(0, "w", 2, 1)
        assert not index.bad("w")
        assert list(index.nonempty("w")) == [0]
        index.update(0, "w", 1, 0)
        assert not index.nonempty("w")

    def test_jump_across_both_thresholds_at_once(self):
        # HPTS phase acceptance can push an empty queue straight to k >= 2.
        index = BufferIndex()
        index.update(3, "w", 0, 4)
        assert list(index.nonempty("w")) == [3]
        assert list(index.bad("w")) == [3]
        index.update(3, "w", 4, 0)
        assert not index.nonempty("w")
        assert not index.bad("w")

    def test_leftmost_bad_after_interleaved_gc(self):
        """drop_empty on a NodeBuffer must leave the owning index exact."""
        events = []
        node = NodeBuffer(0, on_change=lambda *a: events.append(a))
        index = BufferIndex()
        wired = NodeBuffer(
            1, on_change=lambda n, k, old, new: index.update(n, k, old, new)
        )
        with packet_id_scope():
            first = Packet.from_injection(make_injection(0, 1, 9))
            second = Packet.from_injection(make_injection(0, 1, 9))
            wired.store(first, 9)
            wired.store(second, 9)
            assert index.leftmost_bad(9, 0, 8) == 1
            wired.pop_from(9)
            wired.pop_from(9)
            # The queue is empty (not bad, not nonempty) but still allocated.
            assert index.leftmost_bad(9, 0, 8) is None
            wired.drop_empty()
            assert wired.existing(9) is None
            # Re-materialising the queue after GC must re-wire notifications.
            third = Packet.from_injection(make_injection(1, 1, 9))
            fourth = Packet.from_injection(make_injection(1, 1, 9))
            wired.store(third, 9)
            wired.store(fourth, 9)
            assert index.leftmost_bad(9, 0, 8) == 1
        assert not events  # the unwired buffer saw no traffic

    def test_custom_bad_threshold(self):
        index = BufferIndex(bad_threshold=3)
        index.update(2, "w", 0, 2)
        assert not index.bad("w")
        index.update(2, "w", 2, 3)
        assert list(index.bad("w")) == [2]


class TestDropEmptyWithIncrementalSelection:
    def test_aggressive_gc_does_not_change_results(self):
        """Forcing drop_empty every round must be invisible to PPTS."""
        line = LineTopology(32)
        with packet_id_scope():
            pattern = random_line_adversary(
                line, 0.9, 3.0, 120, num_destinations=5, seed=13
            )
            reference = Simulator(line, ParallelPeakToSink(line), pattern).run()
        with packet_id_scope():
            pattern = random_line_adversary(
                line, 0.9, 3.0, 120, num_destinations=5, seed=13
            )
            algorithm = ParallelPeakToSink(line)
            algorithm._gc_interval = 1  # drop empty queues after every round
            algorithm._rounds_until_gc = 1
            aggressive = Simulator(line, algorithm, pattern).run()
        assert reference.max_occupancy == aggressive.max_occupancy
        assert reference.max_occupancy_per_node == aggressive.max_occupancy_per_node
        assert reference.packets_delivered == aggressive.packets_delivered
        assert reference.mean_latency == aggressive.mean_latency
        assert reference.rounds_executed == aggressive.rounds_executed

    def test_gc_then_incremental_selection_still_finds_bad_buffers(self):
        line = LineTopology(16)
        algorithm = ParallelPeakToSink(line)
        with packet_id_scope():
            packets = [
                Packet.from_injection(make_injection(0, 2, 9)) for _ in range(2)
            ]
            algorithm.on_inject(0, packets)
            # Empty, stale queues at other nodes, then GC them away.
            algorithm.buffers[5].pseudo_buffer(9)
            algorithm.buffers[7].pseudo_buffer(9)
            for buffer in algorithm.buffers.values():
                buffer.drop_empty()
            activations = algorithm.select_activations(0)
        assert [a.node for a in activations] == [2]
        assert all(a.key == 9 for a in activations)


class TestNodeBufferCounters:
    def test_load_and_bad_counters_survive_gc_churn(self):
        node = NodeBuffer(0)
        with packet_id_scope():
            for key in (3, 5):
                for _ in range(3):
                    node.store(Packet.from_injection(make_injection(0, 0, key)), key)
            assert node.load == node.recount_load() == 6
            assert node.total_bad == node.recount_total_bad() == 4
            for _ in range(3):
                node.pop_from(3)
            node.drop_empty()
            assert node.load == node.recount_load() == 3
            assert node.total_bad == node.recount_total_bad() == 2
            assert node.keys() == [5]

    def test_pop_from_missing_or_empty_key_raises(self):
        node = NodeBuffer(0)
        with pytest.raises(IndexError):
            node.pop_from("nope")
        node.pseudo_buffer("empty")
        with pytest.raises(IndexError):
            node.pop_from("empty")
