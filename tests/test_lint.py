"""The contract linter, tested against good/bad fixture pairs.

Every rule RPR001–RPR007 has at least one fixture-proven true positive and
one clean counterpart; pragmas, the committed baseline, ``--stats`` and the
self-hosted run on ``src/repro`` are covered as well.  Fixtures live in
``tests/lint_fixtures/`` and are copied into a throwaway package tree at the
path that puts them in the relevant rule's scope.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import Baseline, LintConfig, run_lint
from repro.devtools.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent

#: Config whose hot-path list points at the fixture location used below.
FIXTURE_CONFIG = LintConfig(hot_path_modules=("repro/core/hot.py",))


def plant(tmp_path: Path, fixture: str, rel_path: str) -> Path:
    """Copy a fixture into a tmp package tree at a rule-relevant path."""
    dest = tmp_path / rel_path
    dest.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(FIXTURES / fixture, dest)
    package_root = tmp_path / rel_path.split("/", 1)[0]
    (package_root / "__init__.py").touch()
    return package_root


def lint_tree(root: Path, select, **kwargs):
    kwargs.setdefault("config", FIXTURE_CONFIG)
    return run_lint([root], select=select, **kwargs)


def codes(result):
    return [f.code for f in result.active]


class TestRuleFixtures:
    """One bad/good pair per rule: the bad tree fires, the good one is clean."""

    def test_rpr001_bad(self, tmp_path):
        root = plant(tmp_path, "rpr001_bad.py", "repro/core/algo.py")
        result = lint_tree(root, ["RPR001"])
        assert codes(result) == ["RPR001", "RPR001"]
        messages = " ".join(f.message for f in result.active)
        assert "random.random" in messages and "raw set" in messages

    def test_rpr001_good(self, tmp_path):
        root = plant(tmp_path, "rpr001_good.py", "repro/core/algo.py")
        assert codes(lint_tree(root, ["RPR001"])) == []

    def test_rpr001_out_of_engine_scope_is_clean(self, tmp_path):
        root = plant(tmp_path, "rpr001_bad.py", "repro/analysis/algo.py")
        assert codes(lint_tree(root, ["RPR001"])) == []

    def test_rpr002_bad(self, tmp_path):
        root = plant(tmp_path, "rpr002_bad.py", "repro/core/hot.py")
        result = lint_tree(root, ["RPR002"])
        assert codes(result) == ["RPR002", "RPR002"]
        flagged = {f.symbol for f in result.active}
        assert flagged == {"HotRecord", "HotRow"}  # Enum and Error exempt

    def test_rpr002_good(self, tmp_path):
        root = plant(tmp_path, "rpr002_good.py", "repro/core/hot.py")
        assert codes(lint_tree(root, ["RPR002"])) == []

    def test_rpr003_bad(self, tmp_path):
        root = plant(tmp_path, "rpr003_bad.py", "repro/adversary/rows.py")
        result = lint_tree(root, ["RPR003"])
        assert {f.symbol for f in result.active} == {"Leaky", "BrokenRows"}

    def test_rpr003_good(self, tmp_path):
        root = plant(tmp_path, "rpr003_good.py", "repro/adversary/rows.py")
        assert codes(lint_tree(root, ["RPR003"])) == []

    def test_rpr004_bad(self, tmp_path):
        root = plant(tmp_path, "rpr004_bad.py", "repro/core/algos.py")
        result = lint_tree(root, ["RPR004"])
        by_symbol = {f.symbol: f.message for f in result.active}
        assert set(by_symbol) == {"ShardedNoHooks", "CarryNoFold"}
        assert "boundary_view" in by_symbol["ShardedNoHooks"]
        assert "fold_sibling_state" in by_symbol["CarryNoFold"]

    def test_rpr004_good(self, tmp_path):
        root = plant(tmp_path, "rpr004_good.py", "repro/core/algos.py")
        assert codes(lint_tree(root, ["RPR004"])) == []

    def test_rpr005_bad(self, tmp_path):
        root = plant(tmp_path, "rpr005_module.py", "repro/core/extra.py")
        result = lint_tree(
            root, ["RPR005"], doc_surfaces={"docs/X.md": "nothing relevant"}
        )
        assert codes(result) == ["RPR005"]
        assert "mystery-algo" in result.active[0].message

    def test_rpr005_good(self, tmp_path):
        root = plant(tmp_path, "rpr005_module.py", "repro/core/extra.py")
        surfaces = {"docs/X.md": "use `mystery-algo` (alias `mystery_algo`)"}
        assert codes(lint_tree(root, ["RPR005"], doc_surfaces=surfaces)) == []

    def test_rpr006_bad(self, tmp_path):
        root = plant(tmp_path, "rpr006_bad.py", "repro/network/io.py")
        result = lint_tree(root, ["RPR006"])
        assert codes(result) == ["RPR006"] * 3  # swallow, bare, print

    def test_rpr006_good(self, tmp_path):
        root = plant(tmp_path, "rpr006_good.py", "repro/network/io.py")
        assert codes(lint_tree(root, ["RPR006"])) == []

    def test_rpr006_print_allowed_in_cli(self, tmp_path):
        root = plant(tmp_path, "rpr006_bad.py", "repro/cli.py")
        result = lint_tree(root, ["RPR006"])
        assert len(codes(result)) == 2  # excepts still flagged, print is not
        assert all("print" not in f.message for f in result.active)

    def test_rpr007_bad(self, tmp_path):
        root = plant(tmp_path, "rpr007_module.py", "repro/api/other.py")
        result = lint_tree(root, ["RPR007"])
        assert codes(result) == ["RPR007"]
        assert result.active[0].symbol == "FrozenThing.__post_init__"

    def test_rpr007_good_inside_specs(self, tmp_path):
        root = plant(tmp_path, "rpr007_module.py", "repro/api/specs.py")
        assert codes(lint_tree(root, ["RPR007"])) == []


class TestSuppression:
    def test_pragmas_silence_trailing_and_own_line(self, tmp_path):
        root = plant(tmp_path, "pragmas.py", "repro/network/io.py")
        assert codes(lint_tree(root, ["RPR006"])) == []

    def test_disable_file_pragma(self, tmp_path):
        root = plant(tmp_path, "rpr006_bad.py", "repro/network/io.py")
        target = root / "network" / "io.py"
        target.write_text(
            "# repro-lint: disable-file=RPR006\n" + target.read_text()
        )
        assert codes(lint_tree(root, ["RPR006"])) == []

    def test_unrelated_pragma_does_not_silence(self, tmp_path):
        root = plant(tmp_path, "rpr006_bad.py", "repro/network/io.py")
        target = root / "network" / "io.py"
        target.write_text(
            "# repro-lint: disable-file=RPR001\n" + target.read_text()
        )
        assert codes(lint_tree(root, ["RPR006"])) == ["RPR006"] * 3

    def test_baseline_round_trip(self, tmp_path):
        root = plant(tmp_path, "rpr006_bad.py", "repro/network/io.py")
        first = lint_tree(root, ["RPR006"])
        assert first.exit_code == 1

        baseline_path = tmp_path / "lint_baseline.json"
        Baseline.write(baseline_path, first.active, justification="legacy")
        baseline = Baseline.load(baseline_path)
        second = lint_tree(root, ["RPR006"], baseline=baseline)
        assert second.exit_code == 0
        assert codes(second) == []
        assert len(second.baselined) == 3
        assert second.stale_baseline == []

    def test_baseline_reports_stale_entries_after_fix(self, tmp_path):
        root = plant(tmp_path, "rpr006_bad.py", "repro/network/io.py")
        first = lint_tree(root, ["RPR006"])
        baseline_path = tmp_path / "lint_baseline.json"
        Baseline.write(baseline_path, first.active, justification="legacy")

        shutil.copy(FIXTURES / "rpr006_good.py", root / "network" / "io.py")
        result = lint_tree(
            root, ["RPR006"], baseline=Baseline.load(baseline_path)
        )
        assert result.exit_code == 0
        assert len(result.stale_baseline) == 3  # debt already paid: remove


class TestCli:
    def _tree(self, tmp_path):
        return plant(tmp_path, "rpr006_bad.py", "repro/network/io.py")

    def test_json_output_and_exit_code(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = lint_main(
            [str(root), "--format", "json", "--no-baseline", "--select", "RPR006"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert [f["code"] for f in payload["findings"]] == ["RPR006"] * 3
        assert payload["stats"]["active"] == {"RPR006": 3}

    def test_stats_mode(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = lint_main(
            [str(root), "--no-baseline", "--stats", "--select", "RPR006"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "RPR006" in out and "baseline debt: 0" in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                [str(root), "--baseline", str(baseline), "--write-baseline",
                 "--justification", "legacy io.py handlers, tracked in #42"]
            )
            == 0
        )
        capsys.readouterr()
        code = lint_main([str(root), "--baseline", str(baseline), "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline debt: 3" in out

    def test_write_baseline_requires_justification(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        with pytest.raises(SystemExit):
            lint_main([str(root), "--baseline", str(baseline), "--write-baseline"])
        assert "--justification" in capsys.readouterr().err
        assert not baseline.exists()

    def test_blank_justification_is_rejected(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        with pytest.raises(SystemExit):
            lint_main(
                [str(root), "--baseline", str(baseline), "--write-baseline",
                 "--justification", "   "]
            )
        assert "empty" in capsys.readouterr().err
        assert not baseline.exists()

    def test_justification_without_write_baseline_is_rejected(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        with pytest.raises(SystemExit):
            lint_main([str(root), "--justification", "why not"])
        assert "--write-baseline" in capsys.readouterr().err

    def test_justification_is_recorded_on_every_entry(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        reason = "inherited from the pre-lint era"
        assert (
            lint_main(
                [str(root), "--baseline", str(baseline), "--write-baseline",
                 "--justification", reason]
            )
            == 0
        )
        assert reason in capsys.readouterr().out
        payload = json.loads(baseline.read_text())
        entries = payload["entries"] if isinstance(payload, dict) else payload
        assert len(entries) == 3
        assert all(entry["justification"] == reason for entry in entries)

    def test_unknown_rule_code_rejected(self, tmp_path):
        root = self._tree(tmp_path)
        with pytest.raises(SystemExit):
            lint_main([str(root), "--select", "RPR999"])


class TestSelfLint:
    def test_src_repro_is_clean_modulo_committed_baseline(self):
        """The self-hosted run that CI executes: src/repro must be clean."""
        process = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.devtools.lint",
                "src/repro",
                "--format",
                "json",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        payload = json.loads(process.stdout)
        assert process.returncode == 0, payload["findings"]
        assert payload["findings"] == []
        assert payload["stale_baseline"] == []

    def test_every_rule_is_registered(self):
        from repro.devtools.lint import RULES

        assert sorted(RULES) == [f"RPR00{i}" for i in range(1, 8)]
