"""Unit tests for the closed-form bounds (repro.core.bounds)."""

from __future__ import annotations

import math

import pytest

from repro.core import bounds
from repro.network.errors import ConfigurationError


class TestUpperBounds:
    def test_pts_bound(self):
        assert bounds.pts_upper_bound(0) == 2
        assert bounds.pts_upper_bound(5) == 7

    def test_ppts_bound(self):
        assert bounds.ppts_upper_bound(1, 0) == 2
        assert bounds.ppts_upper_bound(8, 3) == 12

    def test_tree_bound_uses_destination_depth(self):
        assert bounds.tree_ppts_upper_bound(4, 2) == 7

    def test_hpts_bound_formula(self):
        assert bounds.hpts_upper_bound(16, 4, 0) == pytest.approx(4 * 2 + 1)
        assert bounds.hpts_upper_bound(64, 3, 2) == pytest.approx(3 * 4 + 3)

    def test_hpts_with_one_level_matches_ppts_on_all_destinations(self):
        # With ell = 1 the HPTS bound is n + sigma + 1, i.e. the PPTS bound
        # with d = n destinations.
        n, sigma = 32, 2
        assert bounds.hpts_upper_bound(n, 1, sigma) == pytest.approx(
            bounds.ppts_upper_bound(n, sigma)
        )

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            bounds.pts_upper_bound(-1)
        with pytest.raises(ConfigurationError):
            bounds.ppts_upper_bound(0, 1)
        with pytest.raises(ConfigurationError):
            bounds.tree_ppts_upper_bound(-1, 0)
        with pytest.raises(ConfigurationError):
            bounds.hpts_upper_bound(1, 1, 0)
        with pytest.raises(ConfigurationError):
            bounds.hpts_upper_bound(16, 0, 0)


class TestLowerBound:
    def test_zero_below_threshold_rate(self):
        # rho <= 1/(ell+1) gives no information.
        assert bounds.lower_bound(100, 2, 0.33) == 0.0

    def test_positive_above_threshold(self):
        value = bounds.lower_bound(64, 2, 0.5)
        assert value == pytest.approx((3 * 0.5 - 1) / 4 * 8)

    def test_grows_with_network_size(self):
        small = bounds.lower_bound(16, 2, 0.9)
        large = bounds.lower_bound(1024, 2, 0.9)
        assert large > small

    def test_invalid_rho(self):
        with pytest.raises(ConfigurationError):
            bounds.lower_bound(16, 2, 0.0)
        with pytest.raises(ConfigurationError):
            bounds.lower_bound(16, 2, 1.5)


class TestDestinationForm:
    def test_optimal_levels_is_floor_inverse_rate(self):
        assert bounds.optimal_levels(1.0) == 1
        assert bounds.optimal_levels(0.5) == 2
        assert bounds.optimal_levels(0.34) == 2
        assert bounds.optimal_levels(0.25) == 4
        assert bounds.max_levels_for_rate(0.2) == 5

    def test_destination_upper_bound_default_levels(self):
        # rho = 0.5 -> k = 2 -> 2 * sqrt(d) + sigma + 1.
        assert bounds.destination_upper_bound(16, 0.5, 1) == pytest.approx(
            2 * 4 + 1 + 1
        )

    def test_destination_upper_bound_explicit_levels(self):
        assert bounds.destination_upper_bound(8, 0.5, 0, levels=3) == pytest.approx(
            3 * 2 + 1
        )

    def test_destination_lower_bound(self):
        value = bounds.destination_lower_bound(64, 0.5)
        assert value == pytest.approx((3 * 0.5 - 1) / 4 * 8)
        # With the default k = floor(1/rho) the premise rho > 1/(k+1) always
        # holds, so the bound is always positive.
        assert bounds.destination_lower_bound(64, 0.3) > 0
        # With an explicitly shallow hierarchy the premise rho > 1/(k+1)
        # fails and the theorem gives no information.
        assert bounds.destination_lower_bound(64, 0.3, levels=2) == 0.0

    def test_upper_dominates_lower(self):
        for d in (2, 8, 64, 1024):
            for rho in (0.9, 0.5, 0.3, 0.1):
                assert bounds.destination_upper_bound(
                    d, rho, 0
                ) >= bounds.destination_lower_bound(d, rho)

    def test_log_destination_threshold(self):
        assert bounds.log_destination_threshold_rate(16) == pytest.approx(0.25)
        with pytest.raises(ConfigurationError):
            bounds.log_destination_threshold_rate(1)

    def test_low_rate_gives_logarithmic_space(self):
        """The introduction's observation: rho <= 1/log d gives O(log d) buffers."""
        for d in (16, 256, 4096):
            rho = bounds.log_destination_threshold_rate(d)
            space = bounds.destination_upper_bound(d, rho, 0)
            assert space <= 3 * math.log2(d) + 1


class TestTradeoff:
    def test_space_only_scales_linearly(self):
        row = bounds.bandwidth_space_tradeoff(8, 4.0, 0, 0.5)
        assert row["scaled_destinations"] == 32
        assert row["space_only_buffers"] == bounds.ppts_upper_bound(32, 0)

    def test_bandwidth_route_uses_log_levels(self):
        row = bounds.bandwidth_space_tradeoff(8, 16.0, 0, 0.5)
        assert row["bandwidth_multiplier"] == 4
        assert row["space_bandwidth_buffers"] < row["space_only_buffers"]

    def test_scale_one_is_identity_levels(self):
        row = bounds.bandwidth_space_tradeoff(8, 1.0, 1, 0.5)
        assert row["bandwidth_multiplier"] == 1
        assert row["scaled_destinations"] == 8

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            bounds.bandwidth_space_tradeoff(8, 0.5, 0, 0.5)
