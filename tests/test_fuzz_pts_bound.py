"""Adversary fuzz harness: random search for PTS bound violations.

A seeded random search over explicit ``(round, source, destination)`` route
triples on single-destination lines.  Each generated pattern is admissible
by construction for its *measured* burst ``sigma* = tightest_bound(...)``,
so Proposition 3.1 applies directly: PTS must keep every buffer at or below
``2 + sigma*``.  Every trial runs on the batch kernel and is cross-checked
against the per-round object engine, so the harness doubles as a
differential fuzzer for the vectorized path.

If a trial ever violates the bound, the harness greedily *shrinks* the
pattern (dropping routes while the violation survives), writes the minimal
counterexample to ``tests/regressions/`` and fails with a pointer.  Files
in that directory are replayed on every run as pinned regression cases —
commit the shrunk JSON together with the fix.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.adversary.bounded import tightest_bound
from repro.adversary.generators import build_explicit_adversary
from repro.core.bounds import pts_upper_bound
from repro.core.packet import packet_id_scope
from repro.core.pts import PeakToSink
from repro.network.batch import BatchSimulator
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology

REGRESSION_DIR = Path(__file__).parent / "regressions"
MASTER_SEED = 0x5EED  # deterministic search; bump TRIALS to explore fresh cases
TRIALS = 60
TOLERANCE = 1e-9


# -- scenario machinery ------------------------------------------------------------


def _random_routes(rng: random.Random):
    """A random single-destination schedule mixing bursts and steady trickle."""
    n = rng.randrange(2, 33)
    rounds = rng.randrange(1, 49)
    destination = n - 1
    routes = []
    # Steady phase: a few sources injecting across the horizon.
    for _ in range(rng.randrange(0, 4)):
        source = rng.randrange(0, destination)
        for t in range(rng.randrange(0, rounds), rounds, rng.randrange(1, 6)):
            routes.append((t, source, destination))
    # Burst phase: concentrated hits on single rounds/nodes.
    for _ in range(rng.randrange(0, 5)):
        t = rng.randrange(0, rounds)
        source = rng.randrange(0, destination)
        for _ in range(rng.randrange(1, 7)):
            routes.append((t, source, destination))
    routes.sort()
    return n, rounds, routes[:120]


def _measure(n, rounds, routes, *, engine="batch"):
    """Max occupancy under PTS, plus the pattern's tightest sigma."""
    with packet_id_scope():
        topology = LineTopology(n, allow_virtual_sink=False)
        adversary = build_explicit_adversary(
            topology, rho=1.0, sigma=float(len(routes)), rounds=rounds,
            routes=routes,
        )
        sigma_star = tightest_bound(adversary, topology, 1.0)
        algorithm = PeakToSink(topology, destination=n - 1)
        if engine == "batch":
            simulator = BatchSimulator(topology, algorithm, adversary)
        else:
            simulator = Simulator(topology, algorithm, adversary)
        result = simulator.run()
    return result, sigma_star


def _violates(n, rounds, routes):
    result, sigma_star = _measure(n, rounds, routes)
    return result.max_occupancy > pts_upper_bound(sigma_star) + TOLERANCE


def _shrink(n, rounds, routes):
    """Greedy delta-debugging: drop routes while the violation survives."""
    routes = list(routes)
    changed = True
    while changed:
        changed = False
        for i in range(len(routes) - 1, -1, -1):
            candidate = routes[:i] + routes[i + 1 :]
            if candidate and _violates(n, rounds, candidate):
                routes = candidate
                changed = True
    return routes


def _record_violation(n, rounds, routes, result, sigma_star):
    REGRESSION_DIR.mkdir(exist_ok=True)
    shrunk = _shrink(n, rounds, routes)
    digest = abs(hash((n, rounds, tuple(shrunk)))) % 10**8
    path = REGRESSION_DIR / f"pts_bound_violation_{digest:08d}.json"
    path.write_text(
        json.dumps(
            {
                "description": "PTS exceeded 2 + sigma* (shrunk fuzz case)",
                "n": n,
                "rho": 1.0,
                "rounds": rounds,
                "routes": [list(r) for r in shrunk],
                "observed_max_occupancy": result.max_occupancy,
                "sigma_star": sigma_star,
            },
            indent=2,
        )
        + "\n"
    )
    return path


# -- the search --------------------------------------------------------------------


@pytest.mark.parametrize("trial", range(TRIALS))
def test_fuzz_pts_never_exceeds_paper_bound(trial):
    rng = random.Random((MASTER_SEED << 20) | trial)
    n, rounds, routes = _random_routes(rng)
    batch_result, sigma_star = _measure(n, rounds, routes, engine="batch")
    delta_result, _ = _measure(n, rounds, routes, engine="delta")
    assert batch_result == delta_result, (
        f"engine divergence on fuzz trial {trial}: n={n} rounds={rounds} "
        f"routes={routes}"
    )
    bound = pts_upper_bound(sigma_star)
    if batch_result.max_occupancy > bound + TOLERANCE:
        path = _record_violation(n, rounds, routes, batch_result, sigma_star)
        pytest.fail(
            f"PTS bound violated on trial {trial}: occupancy "
            f"{batch_result.max_occupancy} > 2 + {sigma_star}; shrunk "
            f"counterexample written to {path}"
        )


# -- pinned regression replays -----------------------------------------------------


def _regression_cases():
    if not REGRESSION_DIR.is_dir():
        return []
    return sorted(REGRESSION_DIR.glob("*.json"))


@pytest.mark.parametrize("case", _regression_cases(), ids=lambda p: p.stem)
def test_regression_case_stays_within_bound(case):
    data = json.loads(case.read_text())
    routes = [tuple(route) for route in data["routes"]]
    batch_result, sigma_star = _measure(
        data["n"], data["rounds"], routes, engine="batch"
    )
    delta_result, _ = _measure(data["n"], data["rounds"], routes, engine="delta")
    assert batch_result == delta_result
    assert batch_result.max_occupancy <= pts_upper_bound(sigma_star) + TOLERANCE
