"""Smoke tests: every example script runs end-to-end and prints its tables.

The examples are part of the public deliverable, so the test suite executes
each one in a subprocess (the same way a user would) and checks that it exits
cleanly and emits the headline it promises.  Kept lightweight: each example
finishes in a few seconds on the default parameters.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: (script, snippet that must appear in stdout)
EXAMPLES = [
    ("quickstart.py", "All three bounds hold"),
    ("multi_destination_line.py", "space-bandwidth tradeoff"),
    ("tree_information_gathering.py", "destination depth"),
    ("space_bandwidth_tradeoff.py", "O(log d) regime"),
    ("adversarial_lower_bound.py", "Theorem 5.1 floor"),
    ("hierarchy_visualisation.py", "Segment decomposition"),
    ("checkpoint_resume.py", "bit-identical to the uninterrupted run"),
    ("sharded_run.py", "bit-identical to the single-process run"),
]


def _run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )


@pytest.mark.parametrize("script,expected_snippet", EXAMPLES)
def test_example_runs_cleanly(script, expected_snippet):
    completed = _run_example(script)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert expected_snippet in completed.stdout


def test_every_example_file_is_covered():
    """New example scripts must be added to the smoke-test table above."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {name for name, _ in EXAMPLES}
    assert scripts == covered
