"""Unit tests for the analysis helpers (metrics, tables, tradeoff)."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    check_against_bound,
    comparison_table,
    max_occupancy_series,
    occupancy_profile,
    relative_gap,
)
from repro.analysis.tables import format_kv, format_table, render_series
from repro.analysis.tradeoff import analytic_tradeoff_curve, empirical_tradeoff_point
from repro.network.events import RoundRecord, SimulationResult


def _result(max_occupancy: int, algorithm: str = "PPTS", history=None) -> SimulationResult:
    return SimulationResult(
        algorithm=algorithm,
        num_nodes=16,
        rounds_executed=10,
        max_occupancy=max_occupancy,
        packets_injected=20,
        packets_delivered=18,
        packets_undelivered=2,
        max_latency=7,
        mean_latency=3.5,
        history=history or [],
    )


def _record(round_number: int, occupancy: int) -> RoundRecord:
    return RoundRecord(
        round=round_number,
        injected=1,
        forwarded=1,
        delivered=0,
        max_occupancy=occupancy,
        max_occupancy_after_forwarding=occupancy,
        staged=0,
    )


class TestBoundCheck:
    def test_within_bound(self):
        check = check_against_bound(_result(5), 8)
        assert check.satisfied
        assert check.slack == 3
        assert check.utilisation == pytest.approx(5 / 8)

    def test_violation(self):
        check = check_against_bound(_result(9), 8)
        assert not check.satisfied
        assert check.slack == -1

    def test_no_bound(self):
        check = check_against_bound(_result(9), None)
        assert check.satisfied
        assert check.utilisation == 0.0

    def test_relative_gap(self):
        assert relative_gap(_result(12), _result(4)) == 3.0
        assert relative_gap(_result(12), _result(0)) == float("inf")

    def test_comparison_table_rows(self):
        rows = comparison_table(
            [_result(5, "PPTS"), _result(9, "Greedy-FIFO")],
            bounds={"PPTS": 8},
        )
        assert rows[0]["within_bound"] is True
        assert rows[0]["bound"] == 8
        assert rows[1]["bound"] is None

    def test_max_occupancy_series(self):
        assert max_occupancy_series([_result(3), _result(7)]) == [3, 7]

    def test_occupancy_profile(self):
        history = [_record(t, occupancy) for t, occupancy in enumerate([1, 2, 5, 3, 2, 1])]
        profile = occupancy_profile(_result(5, history=history), num_buckets=3)
        assert profile == [2, 5, 2]

    def test_occupancy_profile_without_history(self):
        assert occupancy_profile(_result(5)) == []


class TestTables:
    def test_format_table_alignment_and_missing_values(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22}],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-" in lines[-1]  # missing value rendered as '-'

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_floats_and_bools(self):
        text = format_table([{"x": 1.23456, "ok": True}])
        assert "1.23" in text
        assert "yes" in text

    def test_format_kv(self):
        text = format_kv({"alpha": 1, "beta": None}, title="params")
        assert text.splitlines()[0] == "params"
        assert ": -" in text

    def test_render_series(self):
        text = render_series([0, 1, 2, 4], label="occ ")
        assert text.startswith("occ [")
        assert "peak=4" in text

    def test_render_series_empty(self):
        assert "(empty)" in render_series([])


class TestTradeoff:
    def test_analytic_curve_shape(self):
        points = analytic_tradeoff_curve(8, [2, 4, 16, 64], sigma=1, rho=0.5)
        assert len(points) == 4
        # Space-only cost grows linearly with alpha; the bandwidth route grows
        # roughly like log(alpha) * d^(1/log(alpha)), so the saving ratio
        # increases with alpha.
        savings = [p.space_saving for p in points]
        assert savings[-1] > savings[0]
        assert all(p.space_only_buffers >= p.space_bandwidth_buffers for p in points[1:])

    def test_analytic_curve_bandwidth_multiplier(self):
        points = analytic_tradeoff_curve(4, [8], sigma=0, rho=1.0)
        assert points[0].bandwidth_multiplier == 3  # ceil(log2 8)

    def test_empirical_point_contains_both_sides(self):
        row = empirical_tradeoff_point(
            num_nodes=32, num_destinations=8, rho=1.0, sigma=1, num_rounds=80
        )
        assert row["ppts_measured"] <= row["ppts_bound"]
        assert row["hpts_measured"] <= row["hpts_bound"]
        assert row["bandwidth_multiplier"] == row["levels"]
