"""Unit tests for buffers and pseudo-buffers (repro.core.pseudobuffer)."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, make_injection
from repro.core.pseudobuffer import NodeBuffer, PseudoBuffer, QueueDiscipline


def _packet(destination: int = 5, source: int = 0) -> Packet:
    return Packet.from_injection(make_injection(0, source, destination))


class TestPseudoBuffer:
    def test_push_pop_lifo(self):
        buffer = PseudoBuffer(key=5, discipline=QueueDiscipline.LIFO)
        first, second = _packet(), _packet()
        buffer.push(first)
        buffer.push(second)
        assert buffer.pop() is second
        assert buffer.pop() is first

    def test_push_pop_fifo(self):
        buffer = PseudoBuffer(key=5, discipline=QueueDiscipline.FIFO)
        first, second = _packet(), _packet()
        buffer.push(first)
        buffer.push(second)
        assert buffer.pop() is first
        assert buffer.pop() is second

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PseudoBuffer(key=0).pop()

    def test_peek_matches_pop_without_removing(self):
        buffer = PseudoBuffer(key=1)
        first, second = _packet(), _packet()
        buffer.push(first)
        buffer.push(second)
        assert buffer.peek() is second
        assert len(buffer) == 2

    def test_peek_empty_returns_none(self):
        assert PseudoBuffer(key=0).peek() is None

    def test_badness_definition(self):
        buffer = PseudoBuffer(key=3)
        assert not buffer.is_bad
        assert buffer.bad_packet_count == 0
        buffer.push(_packet())
        assert not buffer.is_bad
        assert buffer.bad_packet_count == 0
        buffer.push(_packet())
        assert buffer.is_bad
        assert buffer.bad_packet_count == 1
        buffer.push(_packet())
        assert buffer.bad_packet_count == 2

    def test_remove_specific_packet(self):
        buffer = PseudoBuffer(key=0)
        keep, remove = _packet(), _packet()
        buffer.push(keep)
        buffer.push(remove)
        buffer.remove(remove)
        assert buffer.packets() == [keep]

    def test_contains_and_iteration(self):
        buffer = PseudoBuffer(key=0)
        packet = _packet()
        buffer.push(packet)
        assert packet in buffer
        assert list(buffer) == [packet]


class TestNodeBuffer:
    def test_lazy_pseudo_buffer_creation(self):
        node = NodeBuffer(node=3)
        assert node.keys() == []
        node.store(_packet(destination=7), key=7)
        assert node.keys() == [7]

    def test_load_aggregates_pseudo_buffers(self):
        node = NodeBuffer(node=0)
        node.store(_packet(destination=4), key=4)
        node.store(_packet(destination=4), key=4)
        node.store(_packet(destination=6), key=6)
        assert node.load == 3
        assert node.load_of(4) == 2
        assert node.load_of(6) == 1
        assert node.load_of(9) == 0

    def test_bad_count_per_key(self):
        node = NodeBuffer(node=0)
        node.store(_packet(destination=4), key=4)
        assert node.bad_count(4) == 0
        node.store(_packet(destination=4), key=4)
        assert node.bad_count(4) == 1
        assert node.is_bad_for(4)
        assert not node.is_bad_for(6)

    def test_total_bad_sums_over_keys(self):
        node = NodeBuffer(node=0)
        for _ in range(3):
            node.store(_packet(destination=4), key=4)
        for _ in range(2):
            node.store(_packet(destination=6), key=6)
        assert node.total_bad == (3 - 1) + (2 - 1)

    def test_pop_from_missing_key_raises(self):
        node = NodeBuffer(node=0)
        with pytest.raises(IndexError):
            node.pop_from(5)

    def test_nonempty_keys_and_drop_empty(self):
        node = NodeBuffer(node=0)
        node.store(_packet(destination=4), key=4)
        popped = node.pop_from(4)
        assert popped is not None
        assert node.nonempty_keys() == []
        assert node.keys() == [4]
        node.drop_empty()
        assert node.keys() == []

    def test_all_packets_snapshot(self):
        node = NodeBuffer(node=0)
        packets = [_packet(destination=4), _packet(destination=6)]
        node.store(packets[0], key=4)
        node.store(packets[1], key=6)
        assert set(id(p) for p in node.all_packets()) == set(id(p) for p in packets)

    def test_len_matches_load(self):
        node = NodeBuffer(node=0)
        node.store(_packet(destination=2), key=2)
        assert len(node) == node.load == 1

    def test_discipline_propagates_to_pseudo_buffers(self):
        node = NodeBuffer(node=0, discipline=QueueDiscipline.FIFO)
        first, second = _packet(destination=4), _packet(destination=4)
        node.store(first, key=4)
        node.store(second, key=4)
        assert node.pop_from(4) is first
