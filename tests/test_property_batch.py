"""Property-based (Hypothesis) checks for the batch-round kernel.

Two laws, fuzzed over random scenario shapes:

1. **Degenerate window**: with ``batch_rounds=1`` the batch engine performs
   one sync per round, so it must equal the per-round object engine exactly
   — for any (n, rho, sigma, rounds, algorithm) the full results agree.

2. **Checkpoint interchange**: cutting a run at a random round (including
   rounds that land mid-batch-window), snapshotting, and resuming — in any
   engine pairing (batch→delta, delta→batch, batch→batch) — produces the
   same result as the uninterrupted run.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.adversary.generators import trickle_adversary
from repro.baselines.greedy import GreedyForwarding
from repro.checkpoint import load_checkpoint, restore_into
from repro.core.local import DownhillForwarding, LocalThresholdForwarding
from repro.core.packet import packet_id_scope
from repro.core.pts import PeakToSink
from repro.network.batch import BatchSimulator
from repro.network.simulator import Simulator
from repro.network.topology import LineTopology

ALGORITHMS = ("pts", "local", "downhill", "greedy")


@st.composite
def scenarios(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    rho = draw(
        st.floats(min_value=0.1, max_value=1.0, allow_nan=False, allow_infinity=False)
    )
    sigma = draw(st.integers(min_value=0, max_value=6))
    rounds = draw(st.integers(min_value=1, max_value=60))
    algorithm = draw(st.sampled_from(ALGORITHMS))
    locality = draw(st.integers(min_value=0, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, rho, float(sigma), rounds, algorithm, locality, seed


def _build(scenario, engine, *, batch_rounds=64):
    n, rho, sigma, rounds, algorithm, locality, seed = scenario
    topology = LineTopology(n)
    adversary = trickle_adversary(
        topology, rho, sigma, rounds, destination=n - 1, seed=seed
    )
    if algorithm == "pts":
        algo = PeakToSink(topology, destination=n - 1)
    elif algorithm == "local":
        algo = LocalThresholdForwarding(topology, locality, destination=n - 1)
    elif algorithm == "downhill":
        algo = DownhillForwarding(topology, destination=n - 1)
    else:
        algo = GreedyForwarding(topology)
    if engine == "delta":
        return Simulator(topology, algo, adversary)
    return BatchSimulator(
        topology, algo, adversary, backend=engine, batch_rounds=batch_rounds
    )


@settings(max_examples=40, deadline=None)
@given(scenario=scenarios(), backend=st.sampled_from(("numpy", "python")))
def test_batch_window_of_one_equals_delta(scenario, backend):
    with packet_id_scope():
        expected = _build(scenario, "delta").run()
    with packet_id_scope():
        actual = _build(scenario, backend, batch_rounds=1).run()
    assert actual == expected


@settings(max_examples=40, deadline=None)
@given(
    scenario=scenarios(),
    batch_rounds=st.integers(min_value=1, max_value=16),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    pairing=st.sampled_from(
        (("numpy", "delta"), ("delta", "numpy"), ("numpy", "numpy"), ("python", "python"))
    ),
)
def test_checkpoint_resume_equals_straight_run(
    scenario, batch_rounds, cut_fraction, pairing
):
    rounds = scenario[3]
    cut = max(1, min(rounds, int(round(cut_fraction * rounds))))
    first, second = pairing

    with packet_id_scope():
        expected = _build(scenario, "delta").run(rounds)

    fd, path = tempfile.mkstemp(suffix=".ckpt")
    os.close(fd)
    try:
        with packet_id_scope():
            head = _build(scenario, first, batch_rounds=batch_rounds)
            head.run(cut, drain=False)
            head.save_checkpoint(path)
        checkpoint = load_checkpoint(path)
        with packet_id_scope():
            tail = _build(scenario, second, batch_rounds=batch_rounds)
            restore_into(tail, checkpoint)
            resumed = tail.run(rounds)
    finally:
        os.unlink(path)

    assert resumed == expected
