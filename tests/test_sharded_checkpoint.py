"""Per-segment checkpoints stitch into a global snapshot that resumes
bit-identically.

A sharded run with ``checkpoint_every`` saves one snapshot per segment plus
the stitched global file.  The acceptance property: resuming the stitched
file in a plain single-process engine finishes with exactly the result the
uninterrupted run produces — across algorithms (including HPTS, whose staged
packets live scattered over segments) and history modes (including
streaming, whose injection log is re-sorted into global id order).
"""

from __future__ import annotations

import os

import pytest

from repro.api import Scenario, ScenarioSpec, Session
from repro.checkpoint import (
    CheckpointError,
    load_checkpoint,
    stitch_checkpoints,
)
from repro.network.sharded import run_sharded

N = 16
ROUNDS = 30


def _spec(algorithm: str, history: str, *, checkpoint_path=None,
          checkpoint_every=None, seed: int = 41) -> ScenarioSpec:
    scenario = Scenario.line(N)
    if algorithm == "hpts":
        scenario.algorithm("hpts", levels=2)
        rho = 0.5
    elif algorithm == "greedy":
        scenario.algorithm("greedy")
        rho = 0.8
    else:
        scenario.algorithm("ppts")
        rho = 0.8
    params = {"num_destinations": 3}
    if history == "streaming":
        params["stream"] = True
    scenario.adversary("bounded", rho=rho, sigma=3.0, rounds=ROUNDS, **params)
    policy = {"seed": seed}
    if history == "streaming":
        policy["history"] = "streaming"
    elif history == "full":
        policy["record_history"] = True
    if checkpoint_every is not None:
        policy["checkpoint_every"] = checkpoint_every
        policy["checkpoint_path"] = checkpoint_path
    scenario.policy(**policy)
    return scenario.build()


@pytest.mark.parametrize("history", ["summary", "streaming", "full"])
@pytest.mark.parametrize("algorithm", ["ppts", "hpts", "greedy"])
def test_stitched_checkpoint_resumes_bit_identically(tmp_path, algorithm,
                                                     history):
    path = str(tmp_path / "global.ckpt")
    uninterrupted = Session().run(_spec(algorithm, history)).result

    checkpointed = _spec(
        algorithm, history, checkpoint_path=path, checkpoint_every=7
    )
    sharded, _ = run_sharded(checkpointed, shards=3, transport="local")
    assert sharded == uninterrupted

    # Only the stitched file survives (per-segment scaffolding is removed
    # after every successful stitch); it was taken at the last multiple of 7
    # before the horizon.
    assert os.path.exists(path)
    for index in range(3):
        assert not os.path.exists(f"{path}.seg{index}")
    stitched = load_checkpoint(path)
    assert stitched.round == (ROUNDS // 7) * 7

    resumed = Session().resume(path)
    assert resumed.result == uninterrupted


def test_stitched_checkpoint_resumes_mid_staging_phase(tmp_path):
    """HPTS stages injected packets across a phase boundary: a checkpoint at
    a round where staging is non-empty must stitch the scattered staged
    packets back together in global injection order."""
    path = str(tmp_path / "staged.ckpt")
    uninterrupted = Session().run(_spec("hpts", "summary")).result
    # checkpoint_every=3 lands between the levels=2 phase boundaries, so
    # some snapshots catch packets mid-staging.
    checkpointed = _spec(
        "hpts", "summary", checkpoint_path=path, checkpoint_every=3
    )
    run_sharded(checkpointed, shards=4, transport="local")
    assert Session().resume(path).result == uninterrupted


def test_stitch_validates_segment_agreement(tmp_path):
    path_a = str(tmp_path / "a.ckpt")
    path_b = str(tmp_path / "b.ckpt")
    run_sharded(
        _spec("ppts", "summary", checkpoint_path=path_a, checkpoint_every=7),
        shards=2, transport="local",
    )
    run_sharded(
        _spec("ppts", "summary", checkpoint_path=path_b, checkpoint_every=5,
              seed=99),
        shards=2, transport="local",
    )
    with pytest.raises(CheckpointError):
        stitch_checkpoints([])
    with pytest.raises(CheckpointError):
        # Snapshots of two different runs (different seeds, different
        # checkpoint rounds) must refuse to stitch.
        stitch_checkpoints(
            [load_checkpoint(path_a), load_checkpoint(path_b)]
        )


def test_stitched_file_is_a_plain_checkpoint(tmp_path):
    """The stitched file parses like any single-engine snapshot: the
    adversary masquerade and packet-table re-sort leave a file the normal
    loader fully validates (magic, CRC, sections)."""
    path = str(tmp_path / "plain.ckpt")
    run_sharded(
        _spec("ppts", "streaming", checkpoint_path=path, checkpoint_every=7),
        shards=3, transport="local",
    )
    checkpoint = load_checkpoint(path)
    assert checkpoint.header["adversary"]["kind"] == "StreamingAdversary"
    ids = list(checkpoint.section("packets/ids"))
    assert ids == sorted(ids)
    store_ids = list(checkpoint.section("store/ids"))
    assert store_ids == sorted(store_ids)
