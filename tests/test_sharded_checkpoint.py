"""Per-segment checkpoints stitch into a global snapshot that resumes
bit-identically.

A sharded run with ``checkpoint_every`` saves one snapshot per segment plus
the stitched global file.  The acceptance property: resuming the stitched
file in a plain single-process engine finishes with exactly the result the
uninterrupted run produces — across algorithms (including HPTS, whose staged
packets live scattered over segments) and history modes (including
streaming, whose injection log is re-sorted into global id order).
"""

from __future__ import annotations

import os

import pytest

from repro.api import Scenario, ScenarioSpec, Session
from repro.checkpoint import (
    CheckpointError,
    CheckpointFormatError,
    load_checkpoint,
    resume_spec_hash,
    stitch_checkpoints,
)
from repro.network.sharded import run_sharded

N = 16
ROUNDS = 30


def _spec(algorithm: str, history: str, *, checkpoint_path=None,
          checkpoint_every=None, seed: int = 41) -> ScenarioSpec:
    scenario = Scenario.line(N)
    if algorithm == "hpts":
        scenario.algorithm("hpts", levels=2)
        rho = 0.5
    elif algorithm == "greedy":
        scenario.algorithm("greedy")
        rho = 0.8
    else:
        scenario.algorithm("ppts")
        rho = 0.8
    params = {"num_destinations": 3}
    if history == "streaming":
        params["stream"] = True
    scenario.adversary("bounded", rho=rho, sigma=3.0, rounds=ROUNDS, **params)
    policy = {"seed": seed}
    if history == "streaming":
        policy["history"] = "streaming"
    elif history == "full":
        policy["record_history"] = True
    if checkpoint_every is not None:
        policy["checkpoint_every"] = checkpoint_every
        policy["checkpoint_path"] = checkpoint_path
    scenario.policy(**policy)
    return scenario.build()


@pytest.mark.parametrize("history", ["summary", "streaming", "full"])
@pytest.mark.parametrize("algorithm", ["ppts", "hpts", "greedy"])
def test_stitched_checkpoint_resumes_bit_identically(tmp_path, algorithm,
                                                     history):
    path = str(tmp_path / "global.ckpt")
    uninterrupted = Session().run(_spec(algorithm, history)).result

    checkpointed = _spec(
        algorithm, history, checkpoint_path=path, checkpoint_every=7
    )
    sharded, _ = run_sharded(checkpointed, shards=3, transport="local")
    assert sharded == uninterrupted

    # Only the stitched file survives (per-segment scaffolding is removed
    # after every successful stitch); it was taken at the last multiple of 7
    # before the horizon.
    assert os.path.exists(path)
    for index in range(3):
        assert not os.path.exists(f"{path}.seg{index}")
    stitched = load_checkpoint(path)
    assert stitched.round == (ROUNDS // 7) * 7

    resumed = Session().resume(path)
    assert resumed.result == uninterrupted


def test_stitched_checkpoint_resumes_mid_staging_phase(tmp_path):
    """HPTS stages injected packets across a phase boundary: a checkpoint at
    a round where staging is non-empty must stitch the scattered staged
    packets back together in global injection order."""
    path = str(tmp_path / "staged.ckpt")
    uninterrupted = Session().run(_spec("hpts", "summary")).result
    # checkpoint_every=3 lands between the levels=2 phase boundaries, so
    # some snapshots catch packets mid-staging.
    checkpointed = _spec(
        "hpts", "summary", checkpoint_path=path, checkpoint_every=3
    )
    run_sharded(checkpointed, shards=4, transport="local")
    assert Session().resume(path).result == uninterrupted


def test_stitch_validates_segment_agreement(tmp_path):
    path_a = str(tmp_path / "a.ckpt")
    path_b = str(tmp_path / "b.ckpt")
    run_sharded(
        _spec("ppts", "summary", checkpoint_path=path_a, checkpoint_every=7),
        shards=2, transport="local",
    )
    run_sharded(
        _spec("ppts", "summary", checkpoint_path=path_b, checkpoint_every=5,
              seed=99),
        shards=2, transport="local",
    )
    with pytest.raises(CheckpointError):
        stitch_checkpoints([])
    with pytest.raises(CheckpointError):
        # Snapshots of two different runs (different seeds, different
        # checkpoint rounds) must refuse to stitch.
        stitch_checkpoints(
            [load_checkpoint(path_a), load_checkpoint(path_b)]
        )


def test_stitch_mismatched_rounds_is_a_typed_format_error(tmp_path):
    """Snapshots taken at different round boundaries are not a consistent
    cut: stitching must raise CheckpointFormatError naming the round — the
    recovery supervisor keys its fallback-to-round-0 decision on exactly
    this error type."""
    early_path = str(tmp_path / "early.ckpt")
    late_path = str(tmp_path / "late.ckpt")
    # Same scenario, checkpointed at different cadences: final snapshots
    # land at rounds 28 (every 7) and 25 (every 5).
    Session().run(
        _spec("ppts", "summary", checkpoint_path=early_path, checkpoint_every=5)
    )
    Session().run(
        _spec("ppts", "summary", checkpoint_path=late_path, checkpoint_every=7)
    )
    early = load_checkpoint(early_path)
    late = load_checkpoint(late_path)
    assert early.round != late.round
    with pytest.raises(CheckpointFormatError, match="round"):
        stitch_checkpoints([early, late])


def test_recovery_mode_retains_per_segment_cut(tmp_path):
    """recovery='restart' keeps the per-segment snapshots on disk — they ARE
    the recovery cut — and they stitch to the same round as the global
    file.  (With recovery='fail' the scaffolding is removed; see
    test_stitched_checkpoint_resumes_bit_identically.)"""
    path = str(tmp_path / "kept.ckpt")
    base = _spec("ppts", "summary", checkpoint_path=path, checkpoint_every=7)
    spec = Scenario.from_spec(base).policy(
        shards=3, recovery="restart", max_worker_restarts=2
    ).build()
    sharded, _ = run_sharded(spec, transport="local")
    assert os.path.exists(path)
    segments = [load_checkpoint(f"{path}.seg{index}") for index in range(3)]
    restitched = stitch_checkpoints(segments)
    assert restitched.round == load_checkpoint(path).round == (ROUNDS // 7) * 7


def test_resume_hash_ignores_recovery_knobs(tmp_path):
    """The recovery knobs decide how a run survives failures, not what it
    computes: they are normalized out of the resume-identity hash, so a
    checkpoint taken under one recovery policy resumes under any other."""
    base = _spec("ppts", "summary")
    tuned = Scenario.from_spec(base).policy(
        recovery="fold", max_worker_restarts=9, heartbeat_timeout=2.5
    ).build()
    assert resume_spec_hash(base) == resume_spec_hash(tuned)

    path = str(tmp_path / "cross.ckpt")
    ckpt_spec = Scenario.from_spec(base).policy(
        checkpoint_every=7, checkpoint_path=path, shards=3,
        recovery="restart", max_worker_restarts=2,
    ).build()
    uninterrupted = Session().run(base).result
    run_sharded(ckpt_spec, transport="local")
    # Resume under the default (recovery='fail') policy: same run.
    assert Session().resume(path).result == uninterrupted


def test_stitched_file_is_a_plain_checkpoint(tmp_path):
    """The stitched file parses like any single-engine snapshot: the
    adversary masquerade and packet-table re-sort leave a file the normal
    loader fully validates (magic, CRC, sections)."""
    path = str(tmp_path / "plain.ckpt")
    run_sharded(
        _spec("ppts", "streaming", checkpoint_path=path, checkpoint_every=7),
        shards=3, transport="local",
    )
    checkpoint = load_checkpoint(path)
    assert checkpoint.header["adversary"]["kind"] == "StreamingAdversary"
    ids = list(checkpoint.section("packets/ids"))
    assert ids == sorted(ids)
    store_ids = list(checkpoint.section("store/ids"))
    assert store_ids == sorted(store_ids)
