"""Unit tests for the library-level invariant checker (repro.analysis.invariants)."""

from __future__ import annotations

from typing import Hashable, List

from repro.adversary.generators import random_line_adversary
from repro.adversary.stress import round_robin_destination_stress
from repro.analysis.invariants import InvariantMonitor, check_invariants
from repro.core.packet import Packet
from repro.core.ppts import ParallelPeakToSink
from repro.core.pts import PeakToSink
from repro.core.scheduler import Activation, ForwardingAlgorithm
from repro.network.topology import LineTopology


class NeverForward(ForwardingAlgorithm):
    """A deliberately broken algorithm: it stores packets and never forwards.

    Badness then grows without bound, so the invariant checker must flag it —
    this is the failure-injection case proving the checker can actually fail.
    """

    name = "NeverForward"

    def classify(self, packet: Packet, node: int) -> Hashable:
        return packet.destination

    def select_activations(self, round_number: int) -> List[Activation]:
        return []


class TestCheckInvariantsOnCorrectAlgorithms:
    def test_ppts_round_robin(self):
        line = LineTopology(24)
        rho, sigma = 1.0, 2
        pattern = round_robin_destination_stress(line, rho, sigma, 120, 6)
        report = check_invariants(line, ParallelPeakToSink(line), pattern, rho)
        assert report.ok
        assert report.rounds_checked > 0
        assert report.max_badness_minus_excess <= 1 + 1e-9

    def test_ppts_random(self):
        line = LineTopology(20)
        rho, sigma = 0.75, 2
        pattern = random_line_adversary(line, rho, sigma, 80, 4, seed=2)
        report = check_invariants(line, ParallelPeakToSink(line), pattern, rho)
        assert report.ok

    def test_pts_single_destination(self):
        line = LineTopology(20)
        rho, sigma = 1.0, 3
        pattern = round_robin_destination_stress(line, rho, sigma, 80, 1)
        report = check_invariants(line, PeakToSink(line), pattern, rho)
        assert report.ok

    def test_explicit_destination_list(self):
        line = LineTopology(16)
        pattern = round_robin_destination_stress(line, 1.0, 1, 60, 3)
        report = check_invariants(
            line,
            ParallelPeakToSink(line),
            pattern,
            1.0,
            destinations=pattern.destinations(),
        )
        assert report.ok

    def test_num_rounds_truncation(self):
        line = LineTopology(16)
        pattern = round_robin_destination_stress(line, 1.0, 1, 60, 3)
        report = check_invariants(
            line, ParallelPeakToSink(line), pattern, 1.0, num_rounds=10
        )
        assert report.rounds_checked == 10


class TestCheckInvariantsDetectsViolations:
    def test_never_forward_is_flagged(self):
        line = LineTopology(16)
        rho, sigma = 1.0, 1
        pattern = round_robin_destination_stress(line, rho, sigma, 60, 1)
        report = check_invariants(line, NeverForward(line), pattern, rho)
        assert not report.ok
        kinds = {violation.kind for violation in report.violations}
        # A stagnant configuration violates the post-forwarding bound and the
        # strict-decrease property.
        assert "post-forwarding" in kinds
        assert "strict-decrease" in kinds
        assert report.max_badness_minus_excess > 1


class TestInvariantMonitor:
    def test_snapshots_recorded_per_round(self):
        line = LineTopology(12)
        pattern = round_robin_destination_stress(line, 1.0, 1, 20, 2)
        algorithm = ParallelPeakToSink(line)
        monitor = InvariantMonitor(algorithm, destinations=pattern.destinations())
        from repro.network.simulator import Simulator

        Simulator(line, algorithm, pattern).run(num_rounds=20, drain=False)
        assert len(monitor.pre_forwarding) == 20
        assert len(monitor.post_forwarding) == 20
        # Badness never increases across a forwarding step.
        for before, after in zip(monitor.pre_forwarding, monitor.post_forwarding):
            for node in before:
                assert after[node] <= before[node]
