"""Property-based (Hypothesis) checks for the columnar boundary hand-off.

The shared-memory rings are a *transport*: the sequence of ingested
boundary blocks must be fully determined by the superstep protocol, never
by ring timing.  Each batch segment worker records every block it ingests
in a flat int64 trace (6 words per hand-off: round, packet id, source,
destination, injected round, arrival round), shipped back to the
coordinator as ``extras["handoff_traces"]``.

Fuzzed law: for random scenario shapes x random segmentations x random
window lengths — including horizons that tear the last window and drain
tails that stop mid-window — the per-segment traces from the
shared-memory window path are byte-identical to the pickled-pipe relay
path and to the in-process relay, and all three runs produce the same
:class:`SimulationResult`.
"""

from __future__ import annotations

import os

from hypothesis import given, settings, strategies as st

from repro.api import Scenario, Session
from repro.network.sharded import run_sharded

ALGORITHMS = ("pts", "pts_wc", "local", "downhill", "greedy")

#: Six little-endian int64 words per ingested hand-off block.
TRACE_WORDS = 6


@st.composite
def scenarios(draw):
    n = draw(st.integers(min_value=4, max_value=20))
    shards = draw(st.integers(min_value=2, max_value=min(5, n)))
    batch_rounds = draw(st.integers(min_value=1, max_value=16))
    rho = draw(st.floats(min_value=0.3, max_value=1.0,
                         allow_nan=False, allow_infinity=False))
    sigma = draw(st.integers(min_value=0, max_value=5))
    rounds = draw(st.integers(min_value=1, max_value=48))
    algorithm = draw(st.sampled_from(ALGORITHMS))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, shards, batch_rounds, rho, float(sigma), rounds, algorithm, seed


def _build_spec(scenario):
    n, shards, batch_rounds, rho, sigma, rounds, algorithm, seed = scenario
    builder = Scenario.line(n)
    if algorithm == "pts":
        builder.algorithm("pts")
    elif algorithm == "pts_wc":
        builder.algorithm("pts", work_conserving=True)
    elif algorithm == "local":
        builder.algorithm("local", locality=2)
    elif algorithm == "downhill":
        builder.algorithm("downhill")
    else:
        builder.algorithm("greedy")
    builder.adversary("trickle", rho=rho, sigma=sigma, rounds=rounds)
    builder.policy(seed=seed, engine="batch", batch_rounds=batch_rounds)
    return builder.build()


def _traces(extras):
    traces = extras["handoff_traces"]
    assert all(trace is not None for trace in traces), (
        "batch workers must ship a hand-off trace"
    )
    return [trace.tolist() for trace in traces]


@settings(max_examples=10, deadline=None)
@given(scenario=scenarios())
def test_shm_ingested_blocks_byte_identical_to_pipe(scenario):
    """The satellite law: shm window mode == pipe relay == local relay,
    block for block and field for field."""
    n, shards, *_ = scenario
    spec = _build_spec(scenario)

    local_result, local_extras = run_sharded(
        spec, shards=shards, transport="local"
    )
    pipe_result, pipe_extras = run_sharded(
        spec, shards=shards, transport="processes", shm=False
    )
    shm_result, shm_extras = run_sharded(
        spec, shards=shards, transport="processes", shm=True
    )

    assert pipe_result == local_result
    assert shm_result == local_result
    assert shm_extras["engine"]["transport"] == "shm"

    local_traces = _traces(local_extras)
    pipe_traces = _traces(pipe_extras)
    shm_traces = _traces(shm_extras)
    assert pipe_traces == local_traces
    assert shm_traces == local_traces

    # Trace shape sanity: 6-word stride of (round, packet id, source,
    # destination, injected round, arrival round).  Hand-offs only flow
    # left-to-right, so segment 0 (no left neighbour) never ingests.
    rounds_executed = local_result.rounds_executed
    assert local_traces[0] == []
    for trace in local_traces:
        assert len(trace) % TRACE_WORDS == 0
        for base in range(0, len(trace), TRACE_WORDS):
            round_number, pid, src, dst, injected, arrival = (
                trace[base:base + TRACE_WORDS]
            )
            assert 0 <= round_number < rounds_executed
            assert pid >= 0
            assert 0 <= src < n
            assert 0 <= dst <= n
            assert 0 <= injected <= round_number
            assert 0 <= arrival <= round_number


@settings(max_examples=6, deadline=None)
@given(
    scenario=scenarios(),
    checkpoint_every=st.integers(min_value=1, max_value=12),
)
def test_checkpoint_cuts_tear_windows_identically(
    scenario, checkpoint_every, tmp_path_factory
):
    """Checkpoint cuts clamp windows mid-flight; the torn windows must
    ingest the same blocks on every transport, and the stitched cut must
    resume to the uninterrupted result."""
    n, shards, *_ = scenario
    directory = tmp_path_factory.mktemp("shm-handoff")
    base_spec = _build_spec(scenario)
    uninterrupted = Session().run(
        Scenario.from_spec(base_spec).policy(engine="delta").build()
    ).result

    results = {}
    for label, transport, shm in (
        ("pipe", "processes", False),
        ("shm", "processes", True),
    ):
        path = str(directory / f"{label}.ckpt")
        spec = Scenario.from_spec(base_spec).policy(
            checkpoint_every=checkpoint_every, checkpoint_path=path,
        ).build()
        result, extras = run_sharded(
            spec, shards=shards, transport=transport, shm=shm
        )
        assert result == uninterrupted
        results[label] = (_traces(extras), path)

    assert results["shm"][0] == results["pipe"][0]
    # A degenerate horizon (no injections, zero rounds executed) writes no
    # cut on any engine; the transports must at least agree on that.
    shm_path, pipe_path = results["shm"][1], results["pipe"][1]
    assert os.path.exists(shm_path) == os.path.exists(pipe_path)
    if os.path.exists(shm_path):
        resumed = Session().resume(shm_path)
        assert resumed.result == uninterrupted
