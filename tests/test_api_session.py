"""Tests for the Session runner: execution, caching, scoping, determinism."""

from __future__ import annotations

import pytest

from repro.api import RunPolicy, Scenario, Session, TopologySpec
from repro.api.session import PreparedRun
from repro.api.specs import SpecError
from repro.adversary.base import InjectionPattern
from repro.core.packet import make_injection, packet_id_scope
from repro.core.pts import PeakToSink
from repro.adversary.stress import pts_burst_stress
from repro.network.topology import LineTopology


def _random_spec(seed: int, *, d: int = 4):
    return (
        Scenario.line(32)
        .algorithm("ppts")
        .adversary("bounded", rho=1.0, sigma=2, rounds=60, num_destinations=d)
        .seed(seed)
        .build()
    )


class TestRun:
    def test_run_reports_bound_comparison(self):
        report = (
            Scenario.line(24)
            .algorithm("pts")
            .adversary("burst", rho=1.0, sigma=2, rounds=50)
            .run()
        )
        assert report.algorithm == "PTS"
        assert report.bound == 4.0
        assert report.within_bound
        assert report.result.packets_injected > 0
        row = report.as_row()
        assert row["n"] == 24
        assert row["max_occupancy"] <= row["bound"]

    def test_run_rejects_non_scenarios(self):
        from repro.api import SpecError

        with pytest.raises(SpecError):
            Session().run("not a spec")  # type: ignore[arg-type]

    def test_prepared_run_path(self):
        line = LineTopology(16)
        prepared = PreparedRun(
            topology=line,
            algorithm=PeakToSink(line),
            adversary=pts_burst_stress(line, 1.0, 1, 30),
            policy=RunPolicy(),
            name="hand-built",
        )
        report = Session().run(prepared)
        assert report.name == "hand-built"
        assert report.within_bound

    def test_policy_rounds_and_drain(self):
        report = (
            Scenario.line(16)
            .algorithm("pts")
            .adversary("burst", rho=1.0, sigma=1, rounds=50)
            .rounds(10)
            .drain(False)
            .run()
        )
        assert report.result.rounds_executed == 10


class TestBoundComputation:
    def test_compat_layer_uses_the_workload_declared_sigma(self):
        # The lower-bound pattern declares sigma=None (no claim); the workload
        # declares 2.0 — the harness row must keep the pre-API behaviour of
        # computing the bound from the workload's sigma.
        from repro.core.ppts import ParallelPeakToSink
        from repro.experiments.harness import run_workload
        from repro.experiments.workloads import lower_bound_workload

        workload = lower_bound_workload(3, 2, rho=0.5, num_phases=4)
        row = run_workload(workload, lambda w: ParallelPeakToSink(w.topology))
        assert row.bound is not None

    def test_exact_boundary_occupancy_counts_as_within_bound(self):
        # hpts_upper_bound(64, 3, 2) is 14.999999999999998 through floating
        # point; an integer measurement equal to the mathematical bound must
        # not be flagged as a violation.
        class ExactBound(PeakToSink):
            def theoretical_bound(self, sigma):
                return 3 - 1e-13

        line = LineTopology(8)
        prepared = PreparedRun(
            topology=line,
            algorithm=ExactBound(line),
            adversary=pts_burst_stress(line, 1.0, 2, 20),
            name="boundary",
        )
        report = Session().run(prepared)
        assert report.result.max_occupancy == 3
        assert report.within_bound


class TestTopologyCache:
    def test_same_spec_shares_one_topology_instance(self):
        session = Session()
        spec = TopologySpec.tree("random", num_nodes=40, seed=3)
        assert session.topology(spec) is session.topology(spec)
        # Equal-but-distinct spec objects hit the same cache slot.
        assert session.topology(spec) is session.topology(
            TopologySpec.tree("random", num_nodes=40, seed=3)
        )

    def test_cache_can_be_disabled(self):
        session = Session(cache_topologies=False)
        spec = TopologySpec.line(8)
        assert session.topology(spec) is not session.topology(spec)


class TestPacketIdScoping:
    def test_scope_restarts_ids_and_restores_outer_counter(self):
        outer_first = make_injection(0, 0, 1).packet_id
        with packet_id_scope():
            assert make_injection(0, 0, 1).packet_id == 0
            assert make_injection(0, 0, 1).packet_id == 1
        assert make_injection(0, 0, 1).packet_id == outer_first + 1

    def test_each_session_run_starts_packet_ids_at_zero(self):
        make_injection(0, 0, 1)  # disturb the process-wide counter
        report = Session().run(_random_spec(5))
        assert 0 in report.result.max_occupancy_per_node  # sanity: ran on nodes
        # The run's packets were numbered from 0 in its own scope, so a
        # repeat run produces identical injections regardless of history.
        repeat = Session().run(_random_spec(5))
        assert report.result.packets_injected == repeat.result.packets_injected


class TestRunManyDeterminism:
    def test_run_many_matches_sequential_runs_under_fixed_seed(self):
        specs = [_random_spec(seed, d=2 + seed % 3) for seed in range(6)]
        sequential = [Session().run(spec) for spec in specs]
        fanned_out = Session().run_many(specs, max_workers=4)
        assert [r.result.max_occupancy for r in fanned_out] == [
            r.result.max_occupancy for r in sequential
        ]
        assert [r.result.packets_injected for r in fanned_out] == [
            r.result.packets_injected for r in sequential
        ]

    def test_run_many_is_repeatable(self):
        specs = [_random_spec(9), _random_spec(9)]
        first, second = Session().run_many(specs, max_workers=2)
        assert first.result.packets_injected == second.result.packets_injected
        assert first.result.max_occupancy == second.result.max_occupancy
        again = Session().run_many(specs, max_workers=0)
        assert again[0].result.max_occupancy == first.result.max_occupancy

    def test_run_many_preserves_input_order(self):
        specs = [
            Scenario.line(n)
            .algorithm("pts")
            .adversary("burst", rho=1.0, sigma=1, rounds=20)
            .build()
            for n in (8, 16, 32, 64)
        ]
        reports = Session().run_many(specs, max_workers=4)
        assert [report.result.num_nodes for report in reports] == [8, 16, 32, 64]

    def test_run_many_with_processes_matches_thread_pool(self):
        specs = [_random_spec(seed, d=2 + seed % 3) for seed in range(4)]
        threaded = Session().run_many(specs, max_workers=2)
        processed = Session().run_many(specs, max_workers=2, use_processes=True)
        for thread_report, process_report in zip(threaded, processed):
            assert (
                thread_report.result.max_occupancy
                == process_report.result.max_occupancy
            )
            assert (
                thread_report.result.max_occupancy_per_node
                == process_report.result.max_occupancy_per_node
            )
            assert (
                thread_report.result.packets_injected
                == process_report.result.packets_injected
            )
            assert (
                thread_report.result.mean_latency
                == process_report.result.mean_latency
            )
        assert [r.result.num_nodes for r in processed] == [
            r.result.num_nodes for r in threaded
        ]

    def test_run_many_with_processes_rejects_prepared_runs(self):
        line = LineTopology(8)
        prepared = PreparedRun(
            topology=line,
            algorithm=PeakToSink(line),
            adversary=InjectionPattern.from_tuples([(0, 0, 7)]),
        )
        with pytest.raises(SpecError):
            Session().run_many([prepared], use_processes=True)


class TestProcessPoolWarmup:
    """The pool initializer must build each worker's topologies exactly once.

    The seed behaviour rebuilt the topology for every submitted run (a fresh
    Session per run); these tests drive the worker lifecycle in-process —
    ``_warm_worker`` once, then ``_run_spec_in_worker`` per run — and count
    constructions through ``Session.topology_builds``.
    """

    def _install_worker(self, topology_specs):
        from repro.api import session as session_module

        session_module._warm_worker(tuple(topology_specs), True)
        return session_module._WORKER_SESSION

    def _uninstall_worker(self):
        from repro.api import session as session_module

        session_module._WORKER_SESSION = None

    def test_worker_builds_each_topology_once_across_runs(self):
        from repro.api.session import _run_spec_in_worker

        specs = [_random_spec(seed) for seed in range(5)]
        worker_session = self._install_worker({s.topology for s in specs})
        try:
            assert worker_session.topology_builds == 1  # one distinct topology
            reports = [_run_spec_in_worker(spec) for spec in specs]
            # Regression guard: five submitted runs, still one construction.
            assert worker_session.topology_builds == 1
        finally:
            self._uninstall_worker()
        sequential = [Session().run(spec) for spec in specs]
        assert [r.result.max_occupancy for r in reports] == [
            r.result.max_occupancy for r in sequential
        ]

    def test_unwarmed_worker_falls_back_to_fresh_session(self):
        from repro.api.session import _run_spec_in_worker

        self._uninstall_worker()
        report = _run_spec_in_worker(_random_spec(3))
        assert report.result.packets_injected > 0

    def test_session_topology_builds_counts_cache_misses_only(self):
        session = Session()
        spec = _random_spec(0)
        session.topology(spec.topology)
        session.topology(spec.topology)
        assert session.topology_builds == 1
        uncached = Session(cache_topologies=False)
        uncached.topology(spec.topology)
        uncached.topology(spec.topology)
        assert uncached.topology_builds == 2


class TestSeedPropagation:
    def test_policy_seed_reaches_seed_accepting_builders(self):
        a = Session().run(_random_spec(1))
        b = Session().run(_random_spec(1))
        c = Session().run(_random_spec(2))
        assert a.result.packets_injected == b.result.packets_injected
        # Different seeds should (overwhelmingly) produce different traffic;
        # compare the full occupancy fingerprint rather than a single count.
        assert (
            a.result.max_occupancy_per_node != c.result.max_occupancy_per_node
            or a.result.packets_injected != c.result.packets_injected
        )

    def test_explicit_adversary_seed_wins_over_policy_seed(self):
        base = (
            Scenario.line(32)
            .algorithm("ppts")
            .adversary("bounded", rho=1.0, sigma=2, rounds=60,
                       num_destinations=4, seed=1)
        )
        pinned = base.seed(99).build()
        reference = _random_spec(1)
        assert (
            Session().run(pinned).result.packets_injected
            == Session().run(reference).result.packets_injected
        )
