"""Property tests for the delta-driven engine's incremental bookkeeping.

Three layers of cached state must exactly track a from-scratch recount after
*any* mutation sequence:

* ``NodeBuffer.load`` / ``total_bad`` (updated by pseudo-buffer change
  notifications),
* ``ForwardingAlgorithm``'s live occupancy map, dirty-node set and
  ``total_stored`` counter,
* the sorted nonempty/bad position indices (``repro.core.indexset``) the
  peak-to-sink algorithms select activations from.

And the incremental ``select_activations`` paths must produce exactly the
activation lists of the seed engine's linear scans on the same configuration.
"""

from __future__ import annotations

import random
from typing import Hashable, List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexset import BufferIndex, SortedIndexSet
from repro.core.packet import Packet, make_injection, packet_id_scope
from repro.core.pseudobuffer import NodeBuffer
from repro.core.pts import PeakToSink
from repro.core.ppts import ParallelPeakToSink
from repro.core.scheduler import Activation, ForwardingAlgorithm
from repro.core.tree import TreeParallelPeakToSink, TreePeakToSink
from repro.network.topology import LineTopology, random_tree


# ---------------------------------------------------------------------------
# SortedIndexSet
# ---------------------------------------------------------------------------


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 30)), max_size=200))
def test_sorted_index_set_matches_reference_set(operations):
    index = SortedIndexSet()
    reference: set = set()
    for add, value in operations:
        if add:
            index.add(value)
            reference.add(value)
        else:
            index.discard(value)
            reference.discard(value)
        assert list(index) == sorted(reference)
        assert len(index) == len(reference)
        for probe in (0, 7, 29):
            assert (probe in index) == (probe in reference)
    expected_first = min(reference) if reference else None
    assert index.first() == expected_first
    in_window = [v for v in sorted(reference) if 5 <= v <= 20]
    assert index.first_in(5, 20) == (in_window[0] if in_window else None)
    assert list(index.range_iter(5, 20)) == in_window


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 3), st.integers(0, 4)),
        max_size=150,
    )
)
def test_buffer_index_matches_recount(length_changes):
    """Feed arbitrary length transitions; indices must match a recount."""
    index = BufferIndex()
    lengths = {}
    for node, key, new_len in length_changes:
        old_len = lengths.get((node, key), 0)
        lengths[(node, key)] = new_len
        index.update(node, key, old_len, new_len)
    keys = {key for _, key in lengths}
    for key in keys:
        expected_nonempty = sorted(
            node for (node, k), length in lengths.items() if k == key and length >= 1
        )
        expected_bad = sorted(
            node for (node, k), length in lengths.items() if k == key and length >= 2
        )
        assert list(index.nonempty(key)) == expected_nonempty
        assert list(index.bad(key)) == expected_bad


# ---------------------------------------------------------------------------
# NodeBuffer cached counters
# ---------------------------------------------------------------------------


def _random_node_buffer_ops(seed: int, rounds: int = 300) -> NodeBuffer:
    rng = random.Random(seed)
    buffer = NodeBuffer(node=0)
    stored: List[tuple] = []  # (key, packet)
    with packet_id_scope():
        for _ in range(rounds):
            action = rng.random()
            key = rng.randrange(4)
            if action < 0.5 or not stored:
                packet = Packet.from_injection(make_injection(0, 0, 5))
                buffer.store(packet, key)
                stored.append((key, packet))
            elif action < 0.8:
                keys = [k for k, _ in stored]
                key = rng.choice(keys)
                popped = buffer.pop_from(key)
                stored.remove((key, popped))
            else:
                key, packet = stored.pop(rng.randrange(len(stored)))
                buffer.pseudo_buffer(key).remove(packet)
            if rng.random() < 0.05:
                buffer.drop_empty()
            assert buffer.load == buffer.recount_load()
            assert buffer.total_bad == buffer.recount_total_bad()
    return buffer


@pytest.mark.parametrize("seed", range(5))
def test_node_buffer_cached_counters_track_recount(seed):
    buffer = _random_node_buffer_ops(seed)
    assert buffer.load == buffer.recount_load()
    assert buffer.total_bad == buffer.recount_total_bad()


# ---------------------------------------------------------------------------
# Algorithm-level occupancy delta
# ---------------------------------------------------------------------------


class _SingleQueue(ForwardingAlgorithm):
    name = "single-queue"

    def classify(self, packet: Packet, node: int) -> Hashable:
        return "q"

    def select_activations(self, round_number: int) -> List[Activation]:
        return []


@pytest.mark.parametrize("seed", range(3))
def test_occupancy_delta_matches_full_snapshots(seed):
    rng = random.Random(seed)
    line = LineTopology(12)
    algorithm = _SingleQueue(line)
    shadow = {node: 0 for node in line.nodes}  # folded from deltas only
    with packet_id_scope():
        for round_number in range(120):
            for _ in range(rng.randrange(3)):
                source = rng.randrange(11)
                packet = Packet.from_injection(make_injection(round_number, source, 11))
                algorithm.on_inject(round_number, [packet])
            # Pop from a random nonempty node now and then.
            nonempty = [n for n, load in algorithm.occupancy_vector().items() if load]
            if nonempty and rng.random() < 0.7:
                node = rng.choice(nonempty)
                algorithm.buffers[node].pop_from("q")
            delta = algorithm.occupancy_delta()
            shadow.update(delta)
            assert shadow == algorithm.occupancy_vector()
            assert algorithm.total_stored() == sum(shadow.values())
            assert algorithm.occupancy_delta() == {}  # dirty set was consumed


# ---------------------------------------------------------------------------
# Incremental selection == seed scan selection
# ---------------------------------------------------------------------------


def _drive_and_compare(algorithm, inject, rounds: int, seed: int) -> None:
    """Run random inject/forward traffic; compare both selection paths."""
    rng = random.Random(seed)
    with packet_id_scope():
        for round_number in range(rounds):
            inject(rng, algorithm, round_number)
            algorithm.use_incremental_selection = True
            incremental = algorithm.select_activations(round_number)
            algorithm.use_incremental_selection = False
            scan = algorithm.select_activations(round_number)
            assert incremental == scan, f"round {round_number}: {incremental} != {scan}"
            # Apply the activations the way the simulator would (pop all,
            # then re-store at next hops) so later rounds see evolving state.
            moves = []
            for activation in incremental:
                pseudo = algorithm.buffers[activation.node].existing(activation.key)
                if pseudo is None or not pseudo:
                    continue
                if activation.packet is not None:
                    pseudo.remove(activation.packet)
                    packet = activation.packet
                else:
                    packet = pseudo.pop()
                next_hop = algorithm.topology.next_hop(activation.node)
                moves.append((packet, next_hop))
            for packet, next_hop in moves:
                packet.advance(next_hop)
                if next_hop != packet.destination:
                    algorithm.on_arrival(packet, next_hop, round_number)
            algorithm.on_round_end(round_number)
        algorithm.use_incremental_selection = True


def _line_injector(destinations):
    def inject(rng, algorithm, round_number):
        for _ in range(rng.randrange(3)):
            destination = rng.choice(destinations)
            source = rng.randrange(destination)
            packet = Packet.from_injection(
                make_injection(round_number, source, destination)
            )
            algorithm.on_inject(round_number, [packet])

    return inject


@pytest.mark.parametrize("seed", range(4))
def test_pts_incremental_selection_equals_scan(seed):
    line = LineTopology(24)
    algorithm = PeakToSink(line)
    _drive_and_compare(algorithm, _line_injector([23]), rounds=150, seed=seed)


@pytest.mark.parametrize("seed", range(4))
def test_ppts_incremental_selection_equals_scan(seed):
    line = LineTopology(24)
    algorithm = ParallelPeakToSink(line)
    _drive_and_compare(algorithm, _line_injector([6, 13, 23]), rounds=150, seed=seed)


@pytest.mark.parametrize("seed", range(4))
def test_greedy_incremental_selection_equals_scan(seed):
    from repro.baselines.greedy import GreedyForwarding

    line = LineTopology(24)
    algorithm = GreedyForwarding(line)
    _drive_and_compare(algorithm, _line_injector([6, 13, 23]), rounds=150, seed=seed)


def _tree_injector(tree, destinations):
    def inject(rng, algorithm, round_number):
        for _ in range(rng.randrange(3)):
            destination = rng.choice(destinations)
            candidates = [
                node
                for node in tree.nodes
                if node != destination and tree.is_upstream(node, destination)
            ]
            if not candidates:
                continue
            source = rng.choice(candidates)
            packet = Packet.from_injection(
                make_injection(round_number, source, destination)
            )
            algorithm.on_inject(round_number, [packet])

    return inject


@pytest.mark.parametrize("seed", range(4))
def test_tree_pts_incremental_selection_equals_scan(seed):
    tree = random_tree(20, seed=seed)
    algorithm = TreePeakToSink(tree)
    _drive_and_compare(algorithm, _tree_injector(tree, [tree.root]), rounds=120, seed=seed)


@pytest.mark.parametrize("seed", range(4))
def test_tree_ppts_incremental_selection_equals_scan(seed):
    tree = random_tree(20, seed=seed)
    interior = [node for node in tree.nodes if tree.children(node)]
    algorithm = TreeParallelPeakToSink(tree)
    _drive_and_compare(
        algorithm, _tree_injector(tree, interior[:3] or [tree.root]), rounds=120, seed=seed
    )
