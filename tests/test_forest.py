"""Unit tests for forests (repro.network.forest) and tree algorithms on them."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.stress import tree_convergecast_stress
from repro.core.bounds import tree_ppts_upper_bound
from repro.core.tree import TreeParallelPeakToSink
from repro.network.errors import TopologyError
from repro.network.forest import ForestTopology, forest_of
from repro.network.simulator import run_simulation
from repro.network.topology import TreeTopology, caterpillar_tree


def _two_component_forest() -> ForestTopology:
    """A chain 2 -> 1 -> 0 and a star {11, 12} -> 10."""
    return forest_of(
        [
            {0: None, 1: 0, 2: 1},
            {10: None, 11: 10, 12: 10},
        ]
    )


class TestConstruction:
    def test_components_and_roots(self):
        forest = _two_component_forest()
        assert forest.num_components == 2
        assert sorted(forest.roots()) == [0, 10]
        assert forest.num_nodes == 6
        assert forest.num_edges == 4

    def test_overlapping_components_rejected(self):
        with pytest.raises(TopologyError):
            forest_of([{0: None, 1: 0}, {1: None, 2: 1}])

    def test_empty_forest_rejected(self):
        with pytest.raises(TopologyError):
            ForestTopology([])

    def test_component_lookup(self):
        forest = _two_component_forest()
        assert forest.component(2).root == 0
        assert forest.component(11).root == 10
        with pytest.raises(TopologyError):
            forest.component(99)


class TestRouting:
    def test_paths_within_components(self):
        forest = _two_component_forest()
        assert forest.path(2, 0) == [2, 1, 0]
        assert forest.path(11, 10) == [11, 10]
        assert forest.next_hop(2) == 1
        assert forest.next_hop(10) is None

    def test_cross_component_routes_rejected(self):
        forest = _two_component_forest()
        with pytest.raises(TopologyError):
            forest.path(2, 10)
        with pytest.raises(TopologyError):
            forest.validate_route(11, 0)

    def test_is_upstream_false_across_components(self):
        forest = _two_component_forest()
        assert forest.is_upstream(2, 0)
        assert not forest.is_upstream(2, 10)

    def test_path_contains(self):
        forest = _two_component_forest()
        assert forest.path_contains(2, 0, 1)
        assert not forest.path_contains(2, 0, 0)
        assert not forest.path_contains(2, 0, 11)


class TestTreeQuerySurface:
    def test_leaves_depth_subtree(self):
        forest = _two_component_forest()
        assert sorted(forest.leaves()) == [2, 11, 12]
        assert forest.depth(2) == 2
        assert forest.depth(11) == 1
        assert forest.subtree(10) == [10, 11, 12]
        assert forest.children(10) == [11, 12]
        assert forest.parent(1) == 0

    def test_destination_depth_is_max_over_components(self):
        forest = _two_component_forest()
        # Component 1: destinations {0, 1} stack on one path (depth 2);
        # component 2: only the root 10 (depth 1).
        assert forest.destination_depth([0, 1, 10]) == 2
        with pytest.raises(TopologyError):
            forest.destination_depth([0, 99])

    def test_leaf_root_paths_cover_both_components(self):
        forest = _two_component_forest()
        paths = forest.leaf_root_paths()
        assert [2, 1, 0] in paths
        assert [11, 10] in paths


class TestTreeAlgorithmsOnForests:
    def test_ppts_respects_bound_on_union_of_caterpillars(self):
        """The open-problem topology: TreePPTS runs unchanged on a forest and
        meets 1 + d' + sigma with d' the max component destination depth."""
        first = caterpillar_tree(4, 1)
        # Relabel the second caterpillar so node ids do not collide.
        template = caterpillar_tree(5, 2)
        offset = 100
        second = TreeTopology(
            {
                v + offset: (
                    None if template.parent(v) is None else template.parent(v) + offset
                )
                for v in template.nodes
            }
        )
        forest = ForestTopology([first, second])
        destinations = (
            [v for v in first.nodes if first.children(v)]
            + [v for v in second.nodes if second.children(v)]
        )
        sigma = 2
        pattern = tree_convergecast_stress(forest, 1.0, sigma, 120, destinations)
        algorithm = TreeParallelPeakToSink(forest, destinations=destinations)
        result = run_simulation(forest, algorithm, pattern)
        d_prime = forest.destination_depth(destinations)
        assert result.max_occupancy <= tree_ppts_upper_bound(d_prime, sigma)
        assert result.packets_injected > 0

    def test_components_evolve_independently(self):
        forest = _two_component_forest()
        algorithm = TreeParallelPeakToSink(forest, destinations=[0, 10])
        pattern = InjectionPattern.from_tuples(
            [(0, 2, 0), (0, 2, 0), (0, 11, 10)]
        )
        result = run_simulation(forest, algorithm, pattern, drain=False)
        # The bad buffer in the chain forwards; the lone packet in the star
        # stays (no badness there), proving decisions are per-component.
        assert result.max_occupancy == 2
        assert algorithm.occupancy(11) == 1
