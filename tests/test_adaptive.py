"""Unit and integration tests for adaptive adversaries (repro.adversary.adaptive)."""

from __future__ import annotations

import pytest

from repro.adversary.adaptive import BlockingAdversary, HotspotAdversary
from repro.adversary.bounded import check_bounded
from repro.core.bounds import hpts_upper_bound, ppts_upper_bound, pts_upper_bound
from repro.core.hpts import HierarchicalPeakToSink
from repro.core.ppts import ParallelPeakToSink
from repro.core.pts import PeakToSink
from repro.baselines.greedy import GreedyForwarding
from repro.network.errors import ConfigurationError
from repro.network.simulator import Simulator, run_simulation
from repro.network.topology import LineTopology


class TestConstruction:
    def test_parameter_validation(self):
        line = LineTopology(16)
        with pytest.raises(ConfigurationError):
            HotspotAdversary(line, 0.0, 1, 10)
        with pytest.raises(ConfigurationError):
            HotspotAdversary(line, 0.5, -1, 10)
        with pytest.raises(ConfigurationError):
            HotspotAdversary(line, 0.5, 1, -1)
        with pytest.raises(ConfigurationError):
            HotspotAdversary(line, 0.5, 1, 10, destinations=[0])
        with pytest.raises(ConfigurationError):
            BlockingAdversary(line, 0.5, 1, 10, destination=0)

    def test_horizon(self):
        line = LineTopology(16)
        assert HotspotAdversary(line, 1.0, 1, 42).horizon == 42

    def test_adaptive_flag_set(self):
        line = LineTopology(16)
        assert HotspotAdversary(line, 1.0, 1, 5).adaptive is True


class TestBudgetDiscipline:
    def test_realized_pattern_is_bounded(self):
        """Whatever an adaptive adversary injects must satisfy Definition 2.1."""
        line = LineTopology(32)
        rho, sigma = 1.0, 2
        adversary = HotspotAdversary(
            line, rho, sigma, 120, destinations=[15, 31], seed=3
        )
        run_simulation(line, ParallelPeakToSink(line), adversary, num_rounds=120)
        realized = adversary.realized_pattern()
        assert len(realized) > 0
        assert check_bounded(realized, line, rho, sigma).bounded

    def test_blocking_adversary_realized_pattern_is_bounded(self):
        line = LineTopology(24)
        rho, sigma = 0.75, 3
        adversary = BlockingAdversary(line, rho, sigma, 100)
        run_simulation(line, PeakToSink(line), adversary, num_rounds=100)
        assert check_bounded(adversary.realized_pattern(), line, rho, sigma).bounded

    def test_requerying_a_round_does_not_double_spend(self):
        line = LineTopology(16)
        adversary = HotspotAdversary(line, 1.0, 1, 10, destinations=[15])
        first = adversary.adaptive_injections(0, {})
        replay = adversary.adaptive_injections(0, {})
        assert [p.packet_id for p in replay] == [p.packet_id for p in first]
        assert len(adversary.realized_pattern()) == len(first)

    def test_no_injections_after_horizon(self):
        line = LineTopology(16)
        adversary = HotspotAdversary(line, 1.0, 2, 5, destinations=[15])
        assert adversary.adaptive_injections(7, {0: 3}) == []


class TestBoundsHoldUnderAdaptivePressure:
    @pytest.mark.parametrize("sigma", [0, 2, 4])
    def test_pts_bound_against_hotspot(self, sigma):
        line = LineTopology(32)
        adversary = HotspotAdversary(line, 1.0, sigma, 150, seed=1)
        result = run_simulation(line, PeakToSink(line), adversary, num_rounds=150)
        assert result.max_occupancy <= pts_upper_bound(sigma)

    @pytest.mark.parametrize("sigma", [0, 2])
    def test_pts_bound_against_blocking(self, sigma):
        line = LineTopology(32)
        adversary = BlockingAdversary(line, 1.0, sigma, 150)
        result = run_simulation(line, PeakToSink(line), adversary, num_rounds=150)
        assert result.max_occupancy <= pts_upper_bound(sigma)

    def test_ppts_bound_against_hotspot_multiple_destinations(self):
        line = LineTopology(48)
        sigma = 2
        destinations = [12, 24, 36, 47]
        adversary = HotspotAdversary(
            line, 1.0, sigma, 200, destinations=destinations, seed=5
        )
        result = run_simulation(
            line, ParallelPeakToSink(line), adversary, num_rounds=200
        )
        d = adversary.realized_pattern().num_destinations
        assert result.max_occupancy <= ppts_upper_bound(max(1, d), sigma)

    def test_hpts_bound_against_hotspot(self):
        branching, levels = 4, 2
        n = branching**levels
        line = LineTopology(n)
        rho, sigma = 1.0 / levels, 2
        adversary = HotspotAdversary(
            line, rho, sigma, 200, destinations=[5, 9, 13, 15], seed=7
        )
        algorithm = HierarchicalPeakToSink(line, levels, branching, rho=rho)
        result = run_simulation(line, algorithm, adversary, num_rounds=200)
        assert result.max_occupancy <= hpts_upper_bound(n, levels, sigma)


class TestAdaptiveVsObliviousPressure:
    def test_hotspot_pressures_greedy_at_least_as_much_as_uniform_random(self):
        """Sanity: the adaptive adversary is a meaningful stressor — against a
        greedy algorithm it builds at least as much backlog as its own
        oblivious replay run a second time (determinism check), and the
        simulation accounts for every packet."""
        line = LineTopology(32)
        adversary = HotspotAdversary(line, 1.0, 3, 150, destinations=[31], seed=9)
        simulator = Simulator(line, GreedyForwarding(line), adversary)
        result = simulator.run(num_rounds=150)
        realized = adversary.realized_pattern()
        replay_result = run_simulation(line, GreedyForwarding(line), realized)
        assert result.packets_injected == len(realized)
        assert replay_result.max_occupancy <= result.max_occupancy + 1
