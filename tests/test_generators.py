"""Unit tests for the random bounded adversary generators."""

from __future__ import annotations

import pytest

from repro.adversary.bounded import check_bounded
from repro.adversary.generators import (
    bursty_adversary,
    random_line_adversary,
    random_tree_adversary,
    saturating_line_adversary,
    single_destination_adversary,
)
from repro.network.errors import ConfigurationError
from repro.network.topology import LineTopology, caterpillar_tree, star_tree


class TestRandomLineAdversary:
    def test_generated_pattern_is_bounded(self):
        line = LineTopology(32)
        pattern = random_line_adversary(
            line, rho=0.75, sigma=3, num_rounds=120, num_destinations=5, seed=1
        )
        assert check_bounded(pattern, line, 0.75, 3).bounded
        assert len(pattern) > 0

    def test_respects_destination_count(self):
        line = LineTopology(32)
        pattern = random_line_adversary(
            line, rho=1.0, sigma=2, num_rounds=100, num_destinations=6, seed=2
        )
        assert pattern.num_destinations <= 6

    def test_deterministic_for_seed(self):
        line = LineTopology(16)
        first = random_line_adversary(line, 0.5, 2, 50, 3, seed=9)
        second = random_line_adversary(line, 0.5, 2, 50, 3, seed=9)
        assert [
            (p.round, p.source, p.destination) for p in first.all_injections()
        ] == [(p.round, p.source, p.destination) for p in second.all_injections()]

    def test_intensity_scales_volume(self):
        line = LineTopology(16)
        light = random_line_adversary(line, 1.0, 2, 80, 2, seed=4, intensity=0.1)
        heavy = random_line_adversary(line, 1.0, 2, 80, 2, seed=4, intensity=1.0)
        assert len(light) < len(heavy)

    def test_invalid_parameters(self):
        line = LineTopology(8)
        with pytest.raises(ConfigurationError):
            random_line_adversary(line, 0.0, 1, 10, 1)
        with pytest.raises(ConfigurationError):
            random_line_adversary(line, 0.5, -1, 10, 1)
        with pytest.raises(ConfigurationError):
            random_line_adversary(line, 0.5, 1, 10, 0)
        with pytest.raises(ConfigurationError):
            random_line_adversary(line, 0.5, 1, 10, 8)
        with pytest.raises(ConfigurationError):
            random_line_adversary(line, 0.5, 1, 10, 1, intensity=0.0)


class TestSaturatingLineAdversary:
    def test_bounded_and_heavy(self):
        line = LineTopology(24)
        rho, sigma = 1.0, 2
        pattern = saturating_line_adversary(line, rho, sigma, 100, 4, seed=5)
        assert check_bounded(pattern, line, rho, sigma).bounded
        # A saturating adversary at rho = 1 should inject close to one packet
        # per round per unit of bottleneck capacity.
        assert len(pattern) >= 90

    def test_uses_full_burst_budget_early(self):
        line = LineTopology(16)
        pattern = saturating_line_adversary(line, 1.0, 4, 50, 1, seed=6)
        first_round = pattern.injections_for_round(0)
        assert len(first_round) >= 4


class TestSingleDestinationAdversary:
    def test_all_packets_share_destination(self):
        line = LineTopology(20)
        pattern = single_destination_adversary(line, 1.0, 2, 60, seed=7)
        assert pattern.destinations() == [19]
        assert check_bounded(pattern, line, 1.0, 2).bounded

    def test_custom_destination(self):
        line = LineTopology(20)
        pattern = single_destination_adversary(
            line, 0.5, 1, 40, destination=10, seed=8
        )
        assert pattern.destinations() == [10]


class TestBurstyAdversary:
    def test_bounded_despite_bursts(self):
        line = LineTopology(24)
        pattern = bursty_adversary(
            line, rho=0.5, sigma=4, num_rounds=96, num_destinations=3,
            burst_period=12, seed=3,
        )
        assert check_bounded(pattern, line, 0.5, 4).bounded

    def test_injections_only_on_burst_rounds(self):
        pattern = bursty_adversary(
            LineTopology(16), 1.0, 3, 40, 2, burst_period=10, seed=1
        )
        for injection in pattern.all_injections():
            assert injection.round % 10 == 9

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            bursty_adversary(LineTopology(8), 0.5, 1, 10, 1, burst_period=0)


class TestRandomTreeAdversary:
    def test_bounded_on_caterpillar(self):
        tree = caterpillar_tree(5, 2)
        pattern = random_tree_adversary(tree, 1.0, 2, 80, seed=11)
        # Boundedness is defined per buffer; reuse the line checker by mapping
        # node ids (the tree checker uses node indices directly).
        assert len(pattern) > 0
        for injection in pattern.all_injections():
            tree.validate_route(injection.source, injection.destination)

    def test_multiple_destinations(self):
        tree = caterpillar_tree(6, 1)
        spine = [v for v in tree.nodes if tree.children(v)]
        pattern = random_tree_adversary(
            tree, 0.8, 2, 60, destinations=spine, seed=12
        )
        assert set(pattern.destinations()).issubset(set(spine))

    def test_unknown_destination_rejected(self):
        with pytest.raises(ConfigurationError):
            random_tree_adversary(star_tree(3), 0.5, 1, 10, destinations=[99])

    def test_no_eligible_sources_returns_empty(self):
        # A single leaf destination that is itself a leaf has no descendants.
        tree = star_tree(3)
        pattern = random_tree_adversary(tree, 0.5, 1, 10, destinations=[1], seed=1)
        assert len(pattern) == 0
