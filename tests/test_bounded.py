"""Unit tests for (rho, sigma)-boundedness checking and token buckets (Def. 2.1)."""

from __future__ import annotations

import pytest

from repro.adversary.base import InjectionPattern
from repro.adversary.bounded import (
    TokenBucket,
    assert_bounded,
    check_bounded,
    tightest_bound,
    tightest_sigma,
)
from repro.network.errors import BoundednessViolationError
from repro.network.topology import LineTopology


class TestCheckBounded:
    def test_empty_pattern_is_bounded(self):
        line = LineTopology(4)
        report = check_bounded(InjectionPattern([]), line, 0.5, 0)
        assert report.bounded
        assert report.max_excess == 0

    def test_single_packet_within_sigma(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 0, 3)])
        assert check_bounded(pattern, line, 0.5, 1).bounded
        assert check_bounded(pattern, line, 1.0, 0).bounded

    def test_burst_exceeding_sigma_detected(self):
        line = LineTopology(4)
        # Three packets crossing buffer 0 in one round: excess 3 - rho.
        pattern = InjectionPattern.from_tuples([(0, 0, 3)] * 3)
        report = check_bounded(pattern, line, 0.5, 1)
        assert not report.bounded
        assert report.worst_buffer in (0, 1, 2)
        assert report.max_excess == pytest.approx(2.5)

    def test_sustained_overrate_detected_even_with_large_sigma(self):
        line = LineTopology(3)
        # Two packets per round crossing buffer 0 at rho = 1: excess grows by 1
        # per round, so any finite sigma is eventually violated.
        pattern = InjectionPattern.from_tuples(
            [(t, 0, 2) for t in range(30) for _ in range(2)]
        )
        assert not check_bounded(pattern, line, 1.0, 10).bounded
        assert check_bounded(pattern, line, 1.0, 40).bounded

    def test_interval_not_just_prefix_is_checked(self):
        line = LineTopology(3)
        # Quiet for 20 rounds, then a burst of 4: the burst interval alone
        # violates sigma = 2 even though the long prefix average is low.
        pattern = InjectionPattern.from_tuples([(20, 0, 2)] * 4)
        assert not check_bounded(pattern, line, 0.5, 2).bounded
        assert check_bounded(pattern, line, 0.5, 4).bounded

    def test_assert_bounded_raises_with_details(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 0, 3)] * 5)
        with pytest.raises(BoundednessViolationError) as info:
            assert_bounded(pattern, line, 1.0, 1)
        assert info.value.observed > info.value.allowed

    def test_tightest_bound_matches_report(self):
        line = LineTopology(4)
        pattern = InjectionPattern.from_tuples([(0, 0, 3)] * 4 + [(3, 1, 3)])
        rho = 0.5
        report = check_bounded(pattern, line, rho, sigma=100)
        assert tightest_bound(pattern, line, rho) == pytest.approx(report.max_excess)
        assert tightest_sigma(pattern, line, rho) == pytest.approx(report.max_excess)

    def test_pattern_bounded_at_its_tightest_sigma(self):
        line = LineTopology(8)
        pattern = InjectionPattern.from_tuples(
            [(0, 0, 7), (0, 2, 5), (1, 0, 7), (4, 3, 6), (4, 3, 6)]
        )
        sigma = tightest_sigma(pattern, line, 0.5)
        assert check_bounded(pattern, line, 0.5, sigma).bounded
        assert not check_bounded(pattern, line, 0.5, sigma - 0.51).bounded


class TestTokenBucket:
    def test_initial_budget_is_sigma(self):
        bucket = TokenBucket(4, rho=0.5, sigma=2)
        bucket.start_round()
        assert bucket.can_inject([0, 1])
        assert bucket.headroom([0, 1]) == 2

    def test_inject_consumes_tokens(self):
        bucket = TokenBucket(3, rho=0.0, sigma=1)
        bucket.start_round()
        assert bucket.can_inject([0])
        bucket.inject([0])
        assert not bucket.can_inject([0])
        assert bucket.can_inject([1])

    def test_refill_at_rate_rho(self):
        bucket = TokenBucket(1, rho=0.5, sigma=1)
        bucket.start_round()
        bucket.inject([0])
        assert not bucket.can_inject([0])  # 0.5 tokens left after the burst
        bucket.start_round()
        assert bucket.can_inject([0])  # refilled back to a full token

    def test_fractional_rate_with_zero_sigma_admits_nothing(self):
        # Definition 2.1 with sigma = 0 and rho = 0.5 forbids even a single
        # packet (an interval of length 1 allows only 0.5 crossings), so the
        # bucket must never admit.
        bucket = TokenBucket(1, rho=0.5, sigma=0)
        for _ in range(10):
            bucket.start_round()
            assert not bucket.can_inject([0])

    def test_cap_prevents_unbounded_accumulation(self):
        bucket = TokenBucket(1, rho=1.0, sigma=2)
        for _ in range(100):
            bucket.start_round()
        # At most sigma + rho tokens may be available in a single round.
        assert bucket.available(0) <= 3.0

    def test_generated_stream_is_bounded(self):
        """Whatever the bucket admits must satisfy Definition 2.1."""
        line = LineTopology(6)
        bucket = TokenBucket(6, rho=0.7, sigma=2)
        tuples = []
        for t in range(50):
            bucket.start_round()
            # Greedily admit as many full-line packets as possible.
            while bucket.can_inject(list(range(5))):
                bucket.inject(list(range(5)))
                tuples.append((t, 0, 5))
        pattern = InjectionPattern.from_tuples(tuples)
        assert check_bounded(pattern, line, 0.7, 2).bounded

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(2, rho=-0.1, sigma=0)
        with pytest.raises(ValueError):
            TokenBucket(2, rho=0.5, sigma=-1)

    def test_headroom_empty_route(self):
        bucket = TokenBucket(2, rho=0.5, sigma=3)
        assert bucket.headroom([]) == 0
